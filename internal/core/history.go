// Package core implements the paper's contribution: the Bingo spatial data
// prefetcher (§IV), its single unified history table indexed by the short
// event and tagged with the long event, and the instrumented single-event
// and multi-event (TAGE-like) variants used by the motivation experiments
// of §III (Figures 2–4).
package core

import (
	"fmt"
	"math/bits"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// MatchKind reports which event matched during a history lookup.
type MatchKind int

const (
	// MatchNone means neither event found an entry: no prefetch.
	MatchNone MatchKind = iota
	// MatchLong means the PC+Address tag matched: highest accuracy.
	MatchLong
	// MatchShort means only the PC+Offset bits matched (one or more
	// entries); the footprint is the vote across all short matches.
	MatchShort
)

// String names the match kind.
func (m MatchKind) String() string {
	switch m {
	case MatchLong:
		return "long"
	case MatchShort:
		return "short"
	default:
		return "none"
	}
}

// HistoryStats counts lookup outcomes of the unified table.
type HistoryStats struct {
	Lookups    uint64
	LongHits   uint64
	ShortHits  uint64
	Misses     uint64
	Insertions uint64
	Evictions  uint64
}

// MatchProbability is the fraction of lookups that produced a prediction.
func (s HistoryStats) MatchProbability() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LongHits+s.ShortHits) / float64(s.Lookups)
}

// historyEntry is one way of the unified table. The long tag is the
// PC+Address event; the short tag (PC+Offset) is physically a subset of
// the long event's bits in hardware — we store it explicitly for clarity.
type historyEntry struct {
	valid     bool
	longTag   uint64
	shortTag  uint64
	lru       uint64
	footprint prefetch.Footprint // anchored: trigger block rotated to bit 0
	offset    int                // trigger offset the footprint was learned at
}

// HistoryTable is Bingo's single unified history table (Figure 5): indexed
// with a hash of the shortest event (PC+Offset) and tagged with the
// longest (PC+Address), so one physical structure serves both lookup
// events and redundant storage is eliminated by construction.
type HistoryTable struct {
	//ckpt:skip construction parameter, re-supplied by NewHistoryTable; LoadState validates against it
	rc mem.RegionConfig
	//ckpt:skip derived geometry, recomputed by NewHistoryTable; LoadState validates against it
	ways int
	//ckpt:skip derived geometry, recomputed by NewHistoryTable; LoadState validates against it
	setMask uint64
	sets    []historyEntry
	clock   uint64
	//ckpt:skip tuning knob set at construction, not mutated by simulation
	vote float64
	//ckpt:skip tuning knob set at construction, not mutated by simulation
	recent bool // use the most-recent short match instead of voting
	//ckpt:skip tuning knob set at construction, not mutated by simulation
	longBits uint // 0 = full-width tags; else hardware-style truncation
	stats    HistoryStats
	//ckpt:skip checker scratch state, not simulation state; rebuilt as events replay
	san sanState // runtime invariant sanitizer (empty without -tags=san)
}

// SetTagTruncation folds stored tags down to the given widths, modelling
// the partial tags a hardware table actually stores (the paper's 119 KB
// budget implies ≈23-bit long tags). Truncation admits aliasing: two
// different events can masquerade as the same entry. 0 disables
// truncation (the simulation default). Call before inserting anything.
func (h *HistoryTable) SetTagTruncation(longBits uint) { h.longBits = longBits }

// foldTag applies the configured truncation to a tag.
func (h *HistoryTable) foldTag(tag uint64) uint64 {
	if h.longBits == 0 {
		return tag
	}
	return mem.FoldBits(tag, h.longBits)
}

// SetMostRecentPolicy switches multi-match resolution from the paper's
// ≥20%-vote heuristic to "use the most recent matching entry" — one of
// the alternatives §IV evaluates and rejects. Exposed for the ablation
// benchmarks.
func (h *HistoryTable) SetMostRecentPolicy(on bool) { h.recent = on }

// NewHistoryTable builds a table with numEntries total entries and the
// given associativity. voteThreshold is the fraction of short-event
// matches whose footprints must contain a block for it to be prefetched
// (0.20 in the paper).
func NewHistoryTable(rc mem.RegionConfig, numEntries, ways int, voteThreshold float64) (*HistoryTable, error) {
	if ways <= 0 || numEntries <= 0 || numEntries%ways != 0 {
		return nil, fmt.Errorf("core: history entries %d not divisible into %d ways", numEntries, ways)
	}
	sets := numEntries / ways
	if !mem.IsPow2(sets) {
		return nil, fmt.Errorf("core: history set count %d must be a power of two", sets)
	}
	if voteThreshold <= 0 || voteThreshold > 1 {
		return nil, fmt.Errorf("core: vote threshold %v must be in (0,1]", voteThreshold)
	}
	return &HistoryTable{
		rc:      rc,
		ways:    ways,
		setMask: uint64(sets - 1),
		sets:    make([]historyEntry, numEntries),
		vote:    voteThreshold,
	}, nil
}

// MustNewHistoryTable panics on configuration error.
func MustNewHistoryTable(rc mem.RegionConfig, numEntries, ways int, voteThreshold float64) *HistoryTable {
	h, err := NewHistoryTable(rc, numEntries, ways, voteThreshold)
	if err != nil {
		panic(err)
	}
	return h
}

// Stats returns a snapshot of the lookup counters.
func (h *HistoryTable) Stats() HistoryStats { return h.stats }

// Capacity returns the total number of entries.
func (h *HistoryTable) Capacity() int { return len(h.sets) }

// longKey and shortKey derive the two event keys of a trigger access. Both
// map to the same set because the set index is computed from the short key
// only — the heart of the paper's consolidation trick.
func (h *HistoryTable) longKey(pc mem.PC, addr mem.Addr) uint64 {
	return prefetch.EventPCAddress.Key(pc, addr, h.rc)
}

func (h *HistoryTable) shortKey(pc mem.PC, addr mem.Addr) uint64 {
	return prefetch.EventPCOffset.Key(pc, addr, h.rc)
}

func (h *HistoryTable) setFor(shortKey uint64) []historyEntry {
	si := int(shortKey & h.setMask)
	return h.sets[si*h.ways : (si+1)*h.ways]
}

// Insert records the footprint observed after the trigger (pc, addr). The
// footprint must be in region-absolute form; it is anchored (rotated so
// the trigger offset sits at bit 0) before storage so it can be applied at
// any future trigger offset.
func (h *HistoryTable) Insert(pc mem.PC, addr mem.Addr, triggerOffset int, fp prefetch.Footprint) {
	h.sanCheckTrigger(triggerOffset)
	long := h.foldTag(h.longKey(pc, addr))
	short := h.shortKey(pc, addr)
	anchored := fp.Rotate(triggerOffset, 0, h.rc.Blocks())
	set := h.setFor(short)
	h.clock++
	h.stats.Insertions++

	victim := -1
	var victimLRU uint64 = ^uint64(0)
	for i := range set {
		e := &set[i]
		if e.valid && e.longTag == long {
			e.footprint = anchored
			e.shortTag = short
			e.offset = triggerOffset
			e.lru = h.clock
			return
		}
		if !e.valid {
			if victim == -1 || set[victim].valid {
				victim = i
				victimLRU = 0
			}
			continue
		}
		if e.lru < victimLRU {
			victim = i
			victimLRU = e.lru
		}
	}
	if set[victim].valid {
		h.stats.Evictions++
	}
	set[victim] = historyEntry{
		valid:     true,
		longTag:   long,
		shortTag:  short,
		lru:       h.clock,
		footprint: anchored,
		offset:    triggerOffset,
	}
	h.sanAfterInsert(short)
}

// Lookup consults the table for the trigger (pc, addr): first with the
// long PC+Address event, then — within the same set — with the short
// PC+Offset event. The returned footprint is region-absolute, re-anchored
// at the trigger's own offset. For short matches the footprint is the
// ≥vote-threshold majority across all matching entries (§IV's empirically
// best heuristic).
func (h *HistoryTable) Lookup(pc mem.PC, addr mem.Addr, triggerOffset int) (prefetch.Footprint, MatchKind) {
	h.sanCheckTrigger(triggerOffset)
	long := h.foldTag(h.longKey(pc, addr))
	short := h.shortKey(pc, addr)
	set := h.setFor(short)
	h.stats.Lookups++

	for i := range set {
		e := &set[i]
		if e.valid && e.longTag == long {
			h.clock++
			e.lru = h.clock
			h.stats.LongHits++
			return e.footprint.Rotate(0, triggerOffset, h.rc.Blocks()), MatchLong
		}
	}

	// Short-event pass over the same set: count votes per block.
	var votes [64]int
	matches := 0
	var newest *historyEntry
	var newestLRU uint64
	for i := range set {
		e := &set[i]
		if !e.valid || e.shortTag != short {
			continue
		}
		if newest == nil || e.lru > newestLRU {
			newest = e
			newestLRU = e.lru // pre-touch recency decides "most recent"
		}
		matches++
		h.clock++
		e.lru = h.clock
		// Iterate set bits in place: materialising a []int per matching
		// entry (Footprint.Blocks) allocated on every short-vote lookup,
		// the hottest path of the whole simulation.
		for v := uint64(e.footprint); v != 0; v &= v - 1 {
			votes[bits.TrailingZeros64(v)]++
		}
	}
	if matches == 0 {
		h.stats.Misses++
		return 0, MatchNone
	}
	if h.recent {
		h.stats.ShortHits++
		return newest.footprint.Rotate(0, triggerOffset, h.rc.Blocks()), MatchShort
	}
	h.stats.ShortHits++
	needed := int(h.vote*float64(matches) + 0.9999) // ceil(threshold × matches)
	if needed < 1 {
		needed = 1
	}
	var fp prefetch.Footprint
	for b := 0; b < h.rc.Blocks(); b++ {
		if votes[b] >= needed {
			fp = fp.With(b)
		}
	}
	return fp.Rotate(0, triggerOffset, h.rc.Blocks()), MatchShort
}

// storageBits estimates the hardware budget: per entry a valid bit,
// recency bits, a partial long tag, and one footprint bit per block. The
// default widths reproduce the paper's 119 KB figure for 16 K entries.
func (h *HistoryTable) storageBits(longTagBits, recencyBits int) int {
	per := 1 + recencyBits + longTagBits + h.rc.Blocks()
	return len(h.sets) * per
}
