package core

import (
	"fmt"
	"strings"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// MultiEvent is the TAGE-like cascaded-table spatial prefetcher of the
// paper's §III (Figure 1-b): one history table per event kind, every
// completed footprint inserted into all tables, lookups cascading from the
// longest event to the shortest. With a single event it degenerates to the
// classic single-event PPH prefetchers of Figure 2; with two events and
// redundancy probing enabled it produces Figure 4's measurements.
type MultiEvent struct {
	//ckpt:skip derived from the region size re-supplied at construction
	rc mem.RegionConfig
	//ckpt:skip construction parameter, re-supplied by NewMultiEvent; LoadState validates the table count
	events []prefetch.EventKind // longest first
	//conc:core-local each core owns its MultiEvent instance and its tables
	tables []*prefetch.Table[patternEntry]
	//conc:core-local each core owns its MultiEvent instance and its tables
	tracker *prefetch.RegionTracker
	//ckpt:skip construction parameter, re-supplied by NewMultiEvent
	maxDeg int

	// addrBuf backs the slice OnAccess returns; reused across calls so the
	// per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr

	// Per-kind lookup statistics (parallel to events).
	Consulted []uint64 // table i was consulted
	Matched   []uint64 // table i supplied the prediction

	// Redundancy probing (Figure 4): for every prediction opportunity the
	// two longest tables are checked independently.
	//ckpt:skip measurement-mode flag set by the experiment cell, not simulation state
	ProbeRedundancy bool
	BothHit         uint64
	Identical       uint64
	Lookups         uint64
	Predicted       uint64
}

type patternEntry struct {
	fp     prefetch.Footprint // anchored at bit 0
	offset int
}

// MultiEventConfig parameterises the cascade.
type MultiEventConfig struct {
	RegionBytes    uint64
	Events         []prefetch.EventKind // longest first; nil = all five
	TableEntries   int                  // per table
	TableWays      int
	FilterEntries  int
	AccumEntries   int
	TrackerWays    int
	MaxDegree      int
	ProbeRedundant bool
}

// DefaultMultiEventConfig mirrors the Bingo defaults with n cascaded
// events (1 ≤ n ≤ 5, longest first).
func DefaultMultiEventConfig(n int) MultiEventConfig {
	all := prefetch.AllEvents()
	if n < 1 {
		n = 1
	}
	if n > len(all) {
		n = len(all)
	}
	return MultiEventConfig{
		RegionBytes:   2048,
		Events:        all[:n],
		TableEntries:  16 * 1024,
		TableWays:     16,
		FilterEntries: 64,
		AccumEntries:  128,
		TrackerWays:   16,
	}
}

// NewMultiEvent builds the cascade.
func NewMultiEvent(cfg MultiEventConfig) (*MultiEvent, error) {
	rc, err := mem.NewRegionConfig(cfg.RegionBytes)
	if err != nil {
		return nil, err
	}
	if len(cfg.Events) == 0 {
		cfg.Events = prefetch.AllEvents()
	}
	tracker, err := prefetch.NewRegionTracker(rc, cfg.FilterEntries, cfg.AccumEntries, cfg.TrackerWays)
	if err != nil {
		return nil, err
	}
	m := &MultiEvent{
		rc:              rc,
		events:          cfg.Events,
		tracker:         tracker,
		maxDeg:          cfg.MaxDegree,
		Consulted:       make([]uint64, len(cfg.Events)),
		Matched:         make([]uint64, len(cfg.Events)),
		ProbeRedundancy: cfg.ProbeRedundant,
	}
	for range cfg.Events {
		t, err := prefetch.NewTable[patternEntry](cfg.TableEntries, cfg.TableWays)
		if err != nil {
			return nil, err
		}
		m.tables = append(m.tables, t)
	}
	tracker.SetCompleteFunc(m.train)
	return m, nil
}

// train inserts a completed footprint into every cascade table, each under
// its own event key (Figure 1-b's storage discipline, whose redundancy
// Bingo later eliminates).
func (m *MultiEvent) train(ar prefetch.ActiveRegion) {
	anchored := ar.Footprint.Rotate(ar.TriggerOffset, 0, m.rc.Blocks())
	for i, kind := range m.events {
		key := kind.Key(ar.TriggerPC, ar.TriggerAddr, m.rc)
		m.tables[i].Insert(key, patternEntry{fp: anchored, offset: ar.TriggerOffset})
	}
}

// MustNewMultiEvent panics on configuration error.
func MustNewMultiEvent(cfg MultiEventConfig) *MultiEvent {
	m, err := NewMultiEvent(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// MultiEventFactory returns a per-core factory.
func MultiEventFactory(cfg MultiEventConfig) prefetch.Factory {
	return func(int) prefetch.Prefetcher { return MustNewMultiEvent(cfg) }
}

// Name implements prefetch.Prefetcher.
func (m *MultiEvent) Name() string {
	names := make([]string, len(m.events))
	for i, e := range m.events {
		names[i] = e.String()
	}
	return fmt.Sprintf("multievent[%s]", strings.Join(names, ","))
}

// Events returns the cascade's event kinds, longest first.
func (m *MultiEvent) Events() []prefetch.EventKind { return m.events }

// MatchProbability returns the fraction of triggers for which any table
// supplied a prediction.
func (m *MultiEvent) MatchProbability() float64 {
	if m.Lookups == 0 {
		return 0
	}
	return float64(m.Predicted) / float64(m.Lookups)
}

// Redundancy returns the fraction of dual-hit lookups whose long and short
// predictions were identical (Figure 4's metric).
func (m *MultiEvent) Redundancy() float64 {
	if m.BothHit == 0 {
		return 0
	}
	return float64(m.Identical) / float64(m.BothHit)
}

// OnAccess implements prefetch.Prefetcher.
func (m *MultiEvent) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	trigger := m.tracker.Observe(ev.PC, ev.Addr, ev.Hit)
	if trigger == nil {
		return nil
	}
	m.Lookups++

	if m.ProbeRedundancy && len(m.events) >= 2 {
		m.probe(trigger)
	}

	for i, kind := range m.events {
		m.Consulted[i]++
		key := kind.Key(trigger.PC, trigger.Addr, m.rc)
		entry, ok := m.tables[i].Lookup(key, true)
		if !ok {
			continue
		}
		m.Matched[i]++
		m.Predicted++
		fp := entry.fp.Rotate(0, trigger.Offset, m.rc.Blocks())
		addrs := fp.AppendAddrs(m.addrBuf[:0], m.rc, trigger.Base, trigger.Offset)
		m.addrBuf = addrs
		if m.maxDeg > 0 && len(addrs) > m.maxDeg {
			addrs = addrs[:m.maxDeg]
		}
		return addrs
	}
	return nil
}

// probe checks the two longest tables independently and records whether
// both offered the same prediction.
func (m *MultiEvent) probe(trigger *prefetch.Trigger) {
	longEntry, okL := m.tables[0].Lookup(m.events[0].Key(trigger.PC, trigger.Addr, m.rc), false)
	shortEntry, okS := m.tables[1].Lookup(m.events[1].Key(trigger.PC, trigger.Addr, m.rc), false)
	if !okL || !okS {
		return
	}
	m.BothHit++
	if longEntry.fp == shortEntry.fp {
		m.Identical++
	}
}

// OnEviction implements prefetch.Prefetcher: residency end is handled by
// the tracker's completion callback.
func (m *MultiEvent) OnEviction(addr mem.Addr) {
	m.tracker.OnEviction(addr)
}

// StorageBytes implements prefetch.Prefetcher: the naive cascade pays for
// every table (this is exactly the overhead Figure 1-c removes).
func (m *MultiEvent) StorageBytes() int {
	bits := m.tracker.StorageBits()
	for i, kind := range m.events {
		per := 1 + 4 + kind.Bits(m.rc) + m.rc.Blocks()
		bits += m.tables[i].Capacity() * per
	}
	return bits / 8
}

var _ prefetch.Prefetcher = (*MultiEvent)(nil)
