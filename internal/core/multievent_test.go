package core

import (
	"strings"
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func smallMultiConfig(n int) MultiEventConfig {
	cfg := DefaultMultiEventConfig(n)
	cfg.TableEntries = 256
	cfg.TableWays = 4
	cfg.FilterEntries = 16
	cfg.AccumEntries = 32
	cfg.TrackerWays = 4
	return cfg
}

func trainMulti(m *MultiEvent, pc mem.PC, region uint64, blocks []int) {
	for i, blk := range blocks {
		p := pc
		if i > 0 {
			p = pc + mem.PC(i)
		}
		m.OnAccess(access(p, blockAddr(region, blk)))
	}
	m.OnEviction(blockAddr(region, blocks[0]))
}

func TestDefaultMultiEventConfigClamps(t *testing.T) {
	if got := len(DefaultMultiEventConfig(0).Events); got != 1 {
		t.Fatalf("n=0 clamped to %d events", got)
	}
	if got := len(DefaultMultiEventConfig(99).Events); got != 5 {
		t.Fatalf("n=99 clamped to %d events", got)
	}
	if DefaultMultiEventConfig(1).Events[0] != prefetch.EventPCAddress {
		t.Fatal("single event must be PC+Address (the longest)")
	}
}

func TestSingleEventPCAddressOnlyExactRecurrence(t *testing.T) {
	m := MustNewMultiEvent(smallMultiConfig(1))
	trainMulti(m, 0x400, 7, []int{2, 5})

	// Exact recurrence: match.
	if got := m.OnAccess(access(0x400, blockAddr(7, 2))); len(got) != 1 {
		t.Fatalf("exact recurrence should prefetch, got %v", got)
	}
	// New region: PC+Address cannot generalise.
	if got := m.OnAccess(access(0x400, blockAddr(900, 2))); got != nil {
		t.Fatalf("PC+Address-only must not cover new regions, got %v", got)
	}
	// Three prediction lookups happened: the cold training trigger, the
	// exact recurrence (hit), and the new region (miss).
	if got := m.MatchProbability(); got < 0.33 || got > 0.34 {
		t.Fatalf("match probability = %v, want 1/3", got)
	}
}

func TestCascadeFallsBackToShorterEvents(t *testing.T) {
	m := MustNewMultiEvent(smallMultiConfig(2))
	trainMulti(m, 0x400, 7, []int{2, 5})

	got := m.OnAccess(access(0x400, blockAddr(900, 2)))
	if len(got) != 1 || got[0] != blockAddr(900, 5) {
		t.Fatalf("PC+Offset fallback should cover the new region, got %v", got)
	}
	if m.Matched[0] != 0 || m.Matched[1] != 1 {
		t.Fatalf("match attribution = %v", m.Matched)
	}
	// Two prediction lookups happened (the cold training trigger and the
	// test trigger); both consulted both tables since neither long lookup hit.
	if m.Consulted[0] != 2 || m.Consulted[1] != 2 {
		t.Fatalf("consulted = %v", m.Consulted)
	}
}

func TestCascadePrefersLongest(t *testing.T) {
	m := MustNewMultiEvent(smallMultiConfig(2))
	trainMulti(m, 0x400, 7, []int{2, 5})
	m.OnAccess(access(0x400, blockAddr(7, 2))) // long event available
	if m.Matched[0] != 1 || m.Matched[1] != 0 {
		t.Fatalf("longest table should win: %v", m.Matched)
	}
}

func TestRedundancyProbe(t *testing.T) {
	cfg := smallMultiConfig(2)
	cfg.ProbeRedundant = true
	m := MustNewMultiEvent(cfg)
	trainMulti(m, 0x400, 7, []int{2, 5})

	// Exact recurrence: both tables hold the identical footprint.
	m.OnAccess(access(0x400, blockAddr(7, 2)))
	if m.BothHit != 1 || m.Identical != 1 {
		t.Fatalf("probe: both=%d identical=%d", m.BothHit, m.Identical)
	}
	if m.Redundancy() != 1.0 {
		t.Fatalf("redundancy = %v", m.Redundancy())
	}

	// Retrain region 7 with a different footprint while another region
	// trains the short table with the old pattern — then long and short
	// can disagree.
	trainMulti(m, 0x400, 7, []int{2, 9})
	m.OnAccess(access(0x400, blockAddr(7, 2)))
	if m.BothHit != 2 {
		t.Fatalf("both = %d", m.BothHit)
	}
}

func TestRedundancyZeroWhenNoDualHits(t *testing.T) {
	cfg := smallMultiConfig(2)
	cfg.ProbeRedundant = true
	m := MustNewMultiEvent(cfg)
	if m.Redundancy() != 0 {
		t.Fatal("no lookups: redundancy 0")
	}
}

func TestMultiEventName(t *testing.T) {
	m := MustNewMultiEvent(smallMultiConfig(2))
	name := m.Name()
	if !strings.Contains(name, "PC+Address") || !strings.Contains(name, "PC+Offset") {
		t.Fatalf("name = %q", name)
	}
	if len(m.Events()) != 2 {
		t.Fatalf("events = %v", m.Events())
	}
}

func TestMultiEventStorageGrowsWithTables(t *testing.T) {
	s1 := MustNewMultiEvent(smallMultiConfig(1)).StorageBytes()
	s5 := MustNewMultiEvent(smallMultiConfig(5)).StorageBytes()
	if s5 <= s1 {
		t.Fatalf("5-table cascade (%d B) should cost more than 1 table (%d B)", s5, s1)
	}
}

func TestMultiEventMaxDegree(t *testing.T) {
	cfg := smallMultiConfig(2)
	cfg.MaxDegree = 1
	m := MustNewMultiEvent(cfg)
	trainMulti(m, 0x400, 7, []int{0, 4, 8, 12})
	if got := m.OnAccess(access(0x400, blockAddr(900, 0))); len(got) != 1 {
		t.Fatalf("MaxDegree=1 but issued %d", len(got))
	}
}

func TestMultiEventBadConfig(t *testing.T) {
	cfg := smallMultiConfig(2)
	cfg.RegionBytes = 3000
	if _, err := NewMultiEvent(cfg); err == nil {
		t.Fatal("bad region should fail")
	}
	cfg = smallMultiConfig(2)
	cfg.TableEntries = 10
	if _, err := NewMultiEvent(cfg); err == nil {
		t.Fatal("bad table geometry should fail")
	}
}
