package core

import (
	"fmt"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// Config parameterises a Bingo prefetcher instance. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// RegionBytes is the spatial region ("page") size. The authors'
	// configuration uses 2 KB regions of 32 blocks.
	RegionBytes uint64
	// FilterEntries / AccumEntries size the residency tracker.
	FilterEntries int
	AccumEntries  int
	TrackerWays   int
	// HistoryEntries / HistoryWays size the unified history table
	// (16 K × 16-way in the paper's chosen configuration, Figure 6).
	HistoryEntries int
	HistoryWays    int
	// VoteThreshold is the fraction of short-event matches whose
	// footprints must contain a block to prefetch it (0.20 in §IV).
	VoteThreshold float64
	// MaxDegree caps prefetches per trigger; 0 means the whole footprint.
	MaxDegree int
	// MostRecent selects the rejected multi-match heuristic (§IV): use
	// the most recent short match instead of voting. Ablation only.
	MostRecent bool
	// LongTagBits / RecencyBits size the hardware budget accounting.
	LongTagBits int
	RecencyBits int
	// TruncateTags stores long tags folded to LongTagBits instead of
	// full-width, modelling the aliasing a real partial-tagged table
	// admits. Ablation knob; off by default.
	TruncateTags bool
}

// DefaultConfig returns the paper's evaluated configuration (≈119 KB).
func DefaultConfig() Config {
	return Config{
		RegionBytes:    2048,
		FilterEntries:  64,
		AccumEntries:   128,
		TrackerWays:    16,
		HistoryEntries: 16 * 1024,
		HistoryWays:    16,
		VoteThreshold:  0.20,
		MaxDegree:      0,
		LongTagBits:    23,
		RecencyBits:    4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if _, err := mem.NewRegionConfig(c.RegionBytes); err != nil {
		return err
	}
	rc := mem.MustRegionConfig(c.RegionBytes)
	if rc.Blocks() > 64 {
		return fmt.Errorf("core: regions of %d blocks exceed the 64-block footprint limit", rc.Blocks())
	}
	if c.VoteThreshold <= 0 || c.VoteThreshold > 1 {
		return fmt.Errorf("core: vote threshold %v out of (0,1]", c.VoteThreshold)
	}
	return nil
}

// Stats counts Bingo's high-level activity.
type Stats struct {
	Triggers     uint64 // region-opening accesses (history consulted)
	LongMatches  uint64
	ShortMatches uint64
	NoMatches    uint64
	Trained      uint64 // footprints committed to history
	Issued       uint64 // prefetch addresses emitted
}

// Bingo is the paper's spatial data prefetcher: a filter/accumulation
// residency tracker feeding a single unified history table that is looked
// up first with PC+Address and then with PC+Offset.
type Bingo struct {
	//ckpt:skip construction parameter, re-supplied by New before restore
	cfg Config
	//ckpt:skip derived from cfg.RegionBytes in New
	rc mem.RegionConfig
	//conc:core-local each core owns its Bingo instance and its tables
	tracker *prefetch.RegionTracker
	//conc:core-local each core owns its Bingo instance and its tables
	history *HistoryTable
	stats   Stats

	// addrBuf backs the slice OnAccess returns; reused across calls so the
	// per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr
}

// New builds a Bingo instance.
func New(cfg Config) (*Bingo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rc := mem.MustRegionConfig(cfg.RegionBytes)
	tracker, err := prefetch.NewRegionTracker(rc, cfg.FilterEntries, cfg.AccumEntries, cfg.TrackerWays)
	if err != nil {
		return nil, err
	}
	history, err := NewHistoryTable(rc, cfg.HistoryEntries, cfg.HistoryWays, cfg.VoteThreshold)
	if err != nil {
		return nil, err
	}
	history.SetMostRecentPolicy(cfg.MostRecent)
	if cfg.TruncateTags {
		history.SetTagTruncation(uint(cfg.LongTagBits))
	}
	b := &Bingo{cfg: cfg, rc: rc, tracker: tracker, history: history}
	tracker.SetCompleteFunc(b.train)
	return b, nil
}

// train commits a completed residency's footprint to the history table.
func (b *Bingo) train(ar prefetch.ActiveRegion) {
	b.stats.Trained++
	b.history.Insert(ar.TriggerPC, ar.TriggerAddr, ar.TriggerOffset, ar.Footprint)
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *Bingo {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Factory returns a per-core factory for the given configuration (the
// paper's choice: private prefetchers, no metadata sharing between cores).
func Factory(cfg Config) prefetch.Factory {
	return func(int) prefetch.Prefetcher { return MustNew(cfg) }
}

// SharedFactory returns a factory handing the same Bingo instance to
// every core — the metadata-sharing alternative the paper explicitly
// rejects (§V-B, citing SHIFT-style sharing). One history table serves
// all cores: a quarter of the storage, but cross-core interference in the
// tracker and history. Exposed for the sharing ablation.
func SharedFactory(cfg Config) prefetch.Factory {
	shared := MustNew(cfg)
	return func(int) prefetch.Prefetcher { return shared }
}

// Name implements prefetch.Prefetcher.
func (b *Bingo) Name() string { return "bingo" }

// Stats returns a snapshot of the prefetcher counters.
func (b *Bingo) Stats() Stats { return b.stats }

// History exposes the unified table (for experiments and tests).
func (b *Bingo) History() *HistoryTable { return b.history }

// OnAccess implements prefetch.Prefetcher. Non-trigger accesses only
// extend the tracked footprint; trigger accesses consult the history and
// expand the best-matching footprint into prefetch addresses.
func (b *Bingo) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	trigger := b.tracker.Observe(ev.PC, ev.Addr, ev.Hit)
	if trigger == nil {
		return nil
	}
	b.stats.Triggers++
	fp, kind := b.history.Lookup(trigger.PC, trigger.Addr, trigger.Offset)
	switch kind {
	case MatchLong:
		b.stats.LongMatches++
	case MatchShort:
		b.stats.ShortMatches++
	default:
		b.stats.NoMatches++
		return nil
	}
	addrs := fp.AppendAddrs(b.addrBuf[:0], b.rc, trigger.Base, trigger.Offset)
	b.addrBuf = addrs
	if b.cfg.MaxDegree > 0 && len(addrs) > b.cfg.MaxDegree {
		addrs = addrs[:b.cfg.MaxDegree]
	}
	b.stats.Issued += uint64(len(addrs))
	return addrs
}

// OnEviction implements prefetch.Prefetcher: the eviction of any block of
// a tracked region ends its residency and commits the footprint (via the
// tracker's completion callback).
func (b *Bingo) OnEviction(addr mem.Addr) {
	b.tracker.OnEviction(addr)
}

// StorageBytes implements prefetch.Prefetcher; the default configuration
// reports ≈120 KB, matching the paper's 119 KB budget.
func (b *Bingo) StorageBytes() int {
	bits := b.history.storageBits(b.cfg.LongTagBits, b.cfg.RecencyBits) + b.tracker.StorageBits()
	return bits / 8
}

var _ prefetch.Prefetcher = (*Bingo)(nil)
