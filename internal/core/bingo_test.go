package core

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func smallBingoConfig() Config {
	cfg := DefaultConfig()
	cfg.FilterEntries = 16
	cfg.AccumEntries = 32
	cfg.TrackerWays = 4
	cfg.HistoryEntries = 256
	cfg.HistoryWays = 4
	return cfg
}

func access(pc mem.PC, a mem.Addr) prefetch.AccessEvent {
	return prefetch.AccessEvent{PC: pc, Addr: a}
}

// trainRegion walks Bingo through one full residency of a region: trigger,
// extra blocks, then eviction-driven training.
func trainRegion(b *Bingo, pc mem.PC, region uint64, blocks []int) {
	for i, blk := range blocks {
		p := pc
		if i > 0 {
			p = pc + mem.PC(i)
		}
		b.OnAccess(access(p, blockAddr(region, blk)))
	}
	b.OnEviction(blockAddr(region, blocks[0]))
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.RegionBytes = 3000
	if cfg.Validate() == nil {
		t.Error("bad region size should fail")
	}
	cfg = DefaultConfig()
	cfg.RegionBytes = 8192 // 128 blocks > 64-bit footprint
	if cfg.Validate() == nil {
		t.Error("oversized region should fail")
	}
	cfg = DefaultConfig()
	cfg.VoteThreshold = 0
	if cfg.Validate() == nil {
		t.Error("bad vote threshold should fail")
	}
}

func TestTrainThenPrefetchSameRegion(t *testing.T) {
	b := MustNew(smallBingoConfig())
	trainRegion(b, 0x400, 7, []int{2, 5, 9})

	// Re-trigger the SAME region with the same PC at the same block:
	// PC+Address matches and the learned blocks are prefetched.
	addrs := b.OnAccess(access(0x400, blockAddr(7, 2)))
	if len(addrs) != 2 {
		t.Fatalf("prefetches = %v", addrs)
	}
	want := map[mem.Addr]bool{blockAddr(7, 5): true, blockAddr(7, 9): true}
	for _, a := range addrs {
		if !want[a] {
			t.Errorf("unexpected prefetch %v", a)
		}
	}
	st := b.Stats()
	if st.LongMatches != 1 {
		t.Fatalf("stats = %+v (expected a long match)", st)
	}
}

func TestGeneraliseToNewRegion(t *testing.T) {
	b := MustNew(smallBingoConfig())
	trainRegion(b, 0x400, 7, []int{2, 5, 9})

	// A brand-new region triggered by the same PC at the same offset:
	// only the short event can match, and the pattern transfers.
	addrs := b.OnAccess(access(0x400, blockAddr(200, 2)))
	if len(addrs) != 2 {
		t.Fatalf("prefetches = %v", addrs)
	}
	want := map[mem.Addr]bool{blockAddr(200, 5): true, blockAddr(200, 9): true}
	for _, a := range addrs {
		if !want[a] {
			t.Errorf("unexpected prefetch %v", a)
		}
	}
	if b.Stats().ShortMatches != 1 {
		t.Fatalf("stats = %+v (expected a short match)", b.Stats())
	}
}

func TestNoPrefetchWithoutHistory(t *testing.T) {
	b := MustNew(smallBingoConfig())
	if got := b.OnAccess(access(0x400, blockAddr(1, 0))); got != nil {
		t.Fatalf("cold prefetcher should not prefetch, got %v", got)
	}
	if b.Stats().NoMatches != 1 || b.Stats().Triggers != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestNonTriggerAccessesDoNotPrefetch(t *testing.T) {
	b := MustNew(smallBingoConfig())
	trainRegion(b, 0x400, 7, []int{2, 5})
	b.OnAccess(access(0x400, blockAddr(300, 2))) // trigger (short match)
	// Subsequent accesses within the tracked region never prefetch.
	if got := b.OnAccess(access(0x404, blockAddr(300, 5))); got != nil {
		t.Fatalf("non-trigger access prefetched %v", got)
	}
}

func TestMaxDegreeCapsPrefetches(t *testing.T) {
	cfg := smallBingoConfig()
	cfg.MaxDegree = 2
	b := MustNew(cfg)
	trainRegion(b, 0x400, 7, []int{0, 3, 5, 7, 9, 11})
	addrs := b.OnAccess(access(0x400, blockAddr(400, 0)))
	if len(addrs) != 2 {
		t.Fatalf("MaxDegree=2 but issued %d", len(addrs))
	}
}

func TestSingleBlockRegionNotTrained(t *testing.T) {
	b := MustNew(smallBingoConfig())
	b.OnAccess(access(0x400, blockAddr(7, 2)))
	b.OnEviction(blockAddr(7, 2)) // single-block: dropped
	if b.Stats().Trained != 0 {
		t.Fatalf("single-block region trained: %+v", b.Stats())
	}
	if got := b.OnAccess(access(0x400, blockAddr(500, 2))); got != nil {
		t.Fatalf("nothing should have been learned, got %v", got)
	}
}

func TestTriggerBlockNotPrefetched(t *testing.T) {
	b := MustNew(smallBingoConfig())
	trainRegion(b, 0x400, 7, []int{2, 5})
	addrs := b.OnAccess(access(0x400, blockAddr(600, 2)))
	for _, a := range addrs {
		if a == blockAddr(600, 2) {
			t.Fatal("the trigger block itself must not be prefetched")
		}
	}
}

func TestStorageBudgetMatchesPaper(t *testing.T) {
	b := MustNew(DefaultConfig())
	kb := float64(b.StorageBytes()) / 1024
	// Paper: 119 KB for the 16K-entry configuration. Allow the tracker's
	// few extra KB.
	if kb < 110 || kb > 135 {
		t.Fatalf("storage = %.1f KB, want ≈119 KB", kb)
	}
}

func TestName(t *testing.T) {
	if MustNew(smallBingoConfig()).Name() != "bingo" {
		t.Fatal("name wrong")
	}
}

func TestFactoryBuildsIndependentInstances(t *testing.T) {
	f := Factory(smallBingoConfig())
	a := f(0).(*Bingo)
	c := f(1).(*Bingo)
	trainRegion(a, 0x400, 7, []int{2, 5})
	if got := c.OnAccess(access(0x400, blockAddr(300, 2))); got != nil {
		t.Fatal("per-core instances must not share metadata")
	}
}

func TestRotationAcrossOffsets(t *testing.T) {
	// Train with trigger at offset 2, pattern {2,3,4}. A new region
	// triggered by the same PC at the same offset applies {_,3,4}.
	// (Different offsets are distinct short events and do not match.)
	b := MustNew(smallBingoConfig())
	trainRegion(b, 0x400, 7, []int{2, 3, 4})
	addrs := b.OnAccess(access(0x400, blockAddr(777, 2)))
	want := map[mem.Addr]bool{blockAddr(777, 3): true, blockAddr(777, 4): true}
	if len(addrs) != 2 {
		t.Fatalf("prefetches = %v", addrs)
	}
	for _, a := range addrs {
		if !want[a] {
			t.Errorf("unexpected prefetch %v", a)
		}
	}
}
