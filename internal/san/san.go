// Package san is the simulator's runtime invariant sanitizer: an
// ASan/TSan-style checking layer that the hot simulation paths call into
// at well-defined points (cache accesses, DRAM transfers, core ticks,
// system cycles, history-table operations). Each call site verifies a
// dynamic invariant the paper's model depends on — MSHR fill semantics,
// DRAM bank/row-buffer legality, bandwidth ceilings, lockstep cycle
// monotonicity, event conservation, and the rule that a prefetcher may
// change timing but never architectural behaviour (Bingo, HPCA 2019 §V).
//
// The layer is compiled in only under the `san` build tag: without the
// tag, Compiled is the untyped constant false, every per-package sanState
// is an empty struct, and every hook is an empty method the compiler
// inlines to nothing — default builds pay zero cost, enforced by the
// zero-allocation guards in internal/cache. With the tag, checks are
// additionally gated by the Config runtime switch (on by default) so a
// sanitized binary can still produce a reference run with checking off.
//
// On violation the offending hook panics with a *Violation carrying the
// component, the simulated cycle, the invariant ID, and a dump of the
// offending state. A violation is always a simulator bug (or a
// misconfigured model), never a recoverable condition — continuing would
// silently corrupt every reported IPC/coverage number.
//
// Concurrency contract: Apply/SetEnabled store into atomics and may be
// called at any time, but the intended protocol is configure once (flag
// parsing, test setup) before simulations start; the parallel experiment
// engine then reads the switch from many goroutines. The catalog of
// invariant IDs with their paper/model justifications lives in
// DESIGN.md §6b ("Invariant catalog").
package san

import (
	"fmt"
	"sync/atomic"
)

// ID names one checkable invariant. IDs are stable strings (they appear
// in violation reports, DESIGN.md, and CI logs) of the form
// SAN-<COMPONENT>-<INVARIANT>.
type ID string

// The invariant catalog. See DESIGN.md §6b for the model justification
// behind each entry.
const (
	// CacheDupTag: a set never holds two valid lines with the same tag.
	CacheDupTag ID = "SAN-CACHE-DUP-TAG"
	// CacheOccupancy: valid lines in a set never exceed the associativity.
	CacheOccupancy ID = "SAN-CACHE-OCCUPANCY"
	// CacheLRU: the replacement state is well-formed (distinct recency
	// stamps, stamps never ahead of the policy clock, victims in range).
	CacheLRU ID = "SAN-CACHE-LRU"
	// CacheMSHR: fill arrival cycles are never in the past — every access
	// completes at or after the level's own hit latency, and in-flight
	// fills coalesce rather than re-issue (MSHR semantics).
	CacheMSHR ID = "SAN-CACHE-MSHR"
	// CacheClock: access cycles presented to one cache never run backwards.
	CacheClock ID = "SAN-CACHE-CLOCK"
	// CacheEvents: demand accesses = hits + misses, and prefetches issued =
	// fills + drops, after every single access (event conservation).
	CacheEvents ID = "SAN-CACHE-EVENTS"
	// CachePrefetchAccounting: prefetched ∧ used ⇒ counted exactly once:
	// fills = useful + unused + still-resident prefetched lines.
	CachePrefetchAccounting ID = "SAN-CACHE-PF-ACCOUNTING"

	// DramBankState: after an access the bank has the accessed row open and
	// frees no later than the transfer completes.
	DramBankState ID = "SAN-DRAM-BANK-STATE"
	// DramRowClass: the hit/empty/conflict classification (and its latency)
	// matches the bank's actual prior row-buffer state.
	DramRowClass ID = "SAN-DRAM-ROW-CLASS"
	// DramBandwidth: per-channel bus occupancy never exceeds the wall-clock
	// window it was accumulated over — the configured peak (37.5 GB/s for
	// the paper's two channels) is a hard ceiling.
	DramBandwidth ID = "SAN-DRAM-BANDWIDTH"
	// DramMonotone: per-channel completion times are strictly monotone and
	// never earlier than the controller plus transfer minimum.
	DramMonotone ID = "SAN-DRAM-MONOTONE"

	// CPUTick: core ticks observe a non-decreasing cycle, and ROB/LSQ
	// occupancies stay within their configured capacities.
	CPUTick ID = "SAN-CPU-TICK"
	// CPURetire: an instruction only retires once its completion cycle has
	// passed, in order, at most Width per cycle.
	CPURetire ID = "SAN-CPU-RETIRE"

	// SysClock: the lockstep system clock is strictly monotone.
	SysClock ID = "SAN-SYS-CLOCK"
	// SysEvents: end-to-end event conservation — every L1 demand miss is an
	// LLC demand access, per-core prefetch queues respect their bound.
	SysEvents ID = "SAN-SYS-EVENTS"
	// SysSkip: the event engine never jumps the clock over a pending
	// wakeup — on every skip prev→next, no registered waker (hard or
	// lazy) reports an event strictly inside (prev, next).
	SysSkip ID = "SAN-SYS-SKIP"

	// BingoResidency: the unified history table never exceeds its
	// configured residency (valid entries per set ≤ ways, unique long tags
	// within a set).
	BingoResidency ID = "SAN-BINGO-RESIDENCY"
	// BingoFootprint: footprints and trigger offsets stay within the
	// region geometry (no bits at or beyond Blocks()).
	BingoFootprint ID = "SAN-BINGO-FOOTPRINT"

	// TableResidency: the generic prefetcher metadata table keeps unique
	// tags per set and a size that matches the valid-entry count.
	TableResidency ID = "SAN-TABLE-RESIDENCY"
)

// Violation is the structured report a failing invariant panics with.
type Violation struct {
	// Component names the failing model instance ("LLC", "dram", "cpu[2]").
	Component string
	// Cycle is the simulated cycle at which the violation was detected.
	Cycle uint64
	// Invariant is the catalog ID of the broken invariant.
	Invariant ID
	// Detail dumps the offending state.
	Detail string
}

// Error renders the structured report.
func (v *Violation) Error() string {
	return fmt.Sprintf("san: invariant violation\n  invariant: %s\n  component: %s\n  cycle:     %d\n  state:     %s",
		v.Invariant, v.Component, v.Cycle, v.Detail)
}

// Failf panics with a structured Violation report. It is called only from
// checking code that has already detected a broken invariant, so the
// allocations it performs never occur on a healthy run.
func Failf(component string, cycle uint64, inv ID, format string, args ...any) {
	panic(&Violation{
		Component: component,
		Cycle:     cycle,
		Invariant: inv,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Config is the runtime switch of a sanitized build. The zero value is
// "checking off"; DefaultConfig is what a `-tags=san` binary starts with.
type Config struct {
	// Enabled turns every hook into a real check. In a binary built
	// without the san tag this field is ignored — there is nothing to
	// switch on.
	Enabled bool
	// DeepInterval is the period, in per-component events, of the
	// O(structure-size) sweeps (full prefetch-bit recounts, table
	// residency audits). Cheap O(1) checks run on every event regardless.
	// Zero selects the default.
	DeepInterval uint64
}

// DefaultConfig enables checking with an 8192-event deep-sweep period.
func DefaultConfig() Config { return Config{Enabled: true, DeepInterval: 8192} }

const defaultDeepInterval = 8192

var (
	enabled      atomic.Bool
	deepInterval atomic.Uint64
)

func init() {
	// Sanitized builds check by default, so `go test -tags=san ./...`
	// exercises every invariant without per-test setup.
	enabled.Store(Compiled)
	deepInterval.Store(defaultDeepInterval)
}

// Apply installs the runtime switch. Call before simulations start.
func Apply(c Config) {
	if c.DeepInterval == 0 {
		c.DeepInterval = defaultDeepInterval
	}
	deepInterval.Store(c.DeepInterval)
	enabled.Store(c.Enabled && Compiled)
}

// SetEnabled toggles checking without touching the deep-sweep period.
func SetEnabled(on bool) { enabled.Store(on && Compiled) }

// Enabled reports whether hooks should check. In a build without the san
// tag Compiled is constant false, so this folds to false and callers'
// check blocks are dead-code-eliminated.
func Enabled() bool { return Compiled && enabled.Load() }

// DeepInterval returns the configured deep-sweep period (≥ 1).
func DeepInterval() uint64 {
	if v := deepInterval.Load(); v > 0 {
		return v
	}
	return defaultDeepInterval
}
