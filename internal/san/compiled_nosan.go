//go:build !san

package san

// Compiled reports whether the binary was built with the sanitizer layer
// (-tags=san). It is a constant so that `if san.Enabled()` blocks vanish
// entirely from default builds.
const Compiled = false
