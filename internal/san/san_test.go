package san_test

import (
	"strings"
	"testing"

	"bingo/internal/san"
)

func TestViolationReportIsStructured(t *testing.T) {
	defer func() {
		r := recover()
		v, ok := r.(*san.Violation)
		if !ok {
			t.Fatalf("Failf panicked with %T, want *san.Violation", r)
		}
		if v.Component != "LLC" || v.Cycle != 1234 || v.Invariant != san.CacheDupTag {
			t.Errorf("violation fields = %+v", v)
		}
		msg := v.Error()
		for _, want := range []string{"SAN-CACHE-DUP-TAG", "LLC", "1234", "set 7"} {
			if !strings.Contains(msg, want) {
				t.Errorf("report %q missing %q", msg, want)
			}
		}
	}()
	san.Failf("LLC", 1234, san.CacheDupTag, "set %d holds tag %#x twice", 7, 0xabc)
	t.Fatal("Failf returned without panicking")
}

func TestRuntimeSwitchRespectsCompiled(t *testing.T) {
	defer san.Apply(san.Config{Enabled: san.Compiled})

	san.SetEnabled(true)
	if got := san.Enabled(); got != san.Compiled {
		t.Errorf("Enabled() after SetEnabled(true) = %v, want Compiled (%v)", got, san.Compiled)
	}
	san.SetEnabled(false)
	if san.Enabled() {
		t.Error("Enabled() true after SetEnabled(false)")
	}
	san.Apply(san.Config{Enabled: true, DeepInterval: 16})
	if got := san.Enabled(); got != san.Compiled {
		t.Errorf("Enabled() after Apply = %v, want %v", got, san.Compiled)
	}
	if got := san.DeepInterval(); got != 16 {
		t.Errorf("DeepInterval() = %d, want 16", got)
	}
	san.Apply(san.Config{Enabled: true})
	if got := san.DeepInterval(); got == 0 {
		t.Error("DeepInterval() = 0 after Apply with zero interval")
	}
}
