package telemetry

// Collector accumulates the epoch time-series of one run and owns the
// run's metric Registry. Attach it to a system with
// system.EnableTelemetry; the system then drives the cycle-sampling
// callbacks below. A Collector observes exactly the measurement window:
// nothing is recorded during warm-up, and the final partial epoch is
// flushed when measurement completes, so the series always sums to the
// end-of-run totals.
//
// Like the simulator components it observes, a Collector belongs to the
// simulation goroutine; only the Registry's metric values are safe for
// concurrent readers (the debug HTTP server).
type Collector struct {
	epochCycles uint64
	cores       int

	// Workload and Prefetcher label exported artifacts; they never
	// influence collection.
	//ckpt:skip export label, re-set by the harness; never influences collection
	Workload string
	//ckpt:skip export label, re-set by the harness; never influences collection
	Prefetcher string

	reg *Registry
	//ckpt:skip wiring, re-attached by Begin before restore
	//conc:barrier-guarded lifecycle counters are read only at epoch boundaries, between core phases
	lc *Lifecycle
	//ckpt:skip distribution sketch, observational only; Results never read it back
	margins *Histogram
	//ckpt:skip distribution sketch, observational only; Results never read it back
	lateness *Histogram

	begun      bool
	finished   bool
	startCycle uint64 // measurement start
	lastEnd    uint64 // end cycle of the last emitted epoch
	nextAt     uint64 // next nominal epoch edge
	cum        Totals // cumulative totals at lastEnd
	series     []EpochSample
}

// NewCollector returns a collector sampling every epochCycles simulated
// cycles (DefaultEpochCycles when <= 0).
func NewCollector(epochCycles uint64) *Collector {
	if epochCycles == 0 {
		epochCycles = DefaultEpochCycles
	}
	reg := NewRegistry()
	c := &Collector{
		epochCycles: epochCycles,
		reg:         reg,
		margins:     reg.Histogram("prefetch.use_margin_cycles"),
		lateness:    reg.Histogram("prefetch.late_wait_cycles"),
	}
	return c
}

// EpochCycles returns the sampling period.
func (c *Collector) EpochCycles() uint64 { return c.epochCycles }

// Registry returns the collector's metric registry.
func (c *Collector) Registry() *Registry { return c.reg }

// Lifecycle returns the bound lifecycle tracker (nil for a baseline
// run with no prefetcher).
func (c *Collector) Lifecycle() *Lifecycle { return c.lc }

// BindCores tells the collector the machine's core count (used to
// validate checkpointed state).
func (c *Collector) BindCores(n int) { c.cores = n }

// BindLifecycle points the collector at the system's lifecycle tracker
// and wires the margin/lateness distributions into it.
func (c *Collector) BindLifecycle(lc *Lifecycle) {
	c.lc = lc
	if lc != nil {
		lc.AttachHistograms(c.margins, c.lateness)
	}
}

// Begun reports whether measurement sampling has started.
func (c *Collector) Begun() bool { return c.begun }

// Finished reports whether the series has been flushed.
func (c *Collector) Finished() bool { return c.finished }

// Begin starts the series at the measurement-start cycle. The caller
// guarantees all simulation stats were just reset, so the cumulative
// baseline is zero.
func (c *Collector) Begin(cycle uint64) {
	if c.begun {
		panic("telemetry: Collector.Begin called twice")
	}
	c.begun = true
	c.startCycle = cycle
	c.lastEnd = cycle
	c.nextAt = cycle + c.epochCycles
	c.cum = Totals{}
	// The lifecycle probes fire in every phase, so any warm-up
	// prefetch-use observations are discarded here: the distributions
	// cover exactly the measurement window, like the series and counters
	// (and like a collector attached only after a warm-start restore).
	c.margins.reset()
	c.lateness.reset()
}

// Resync starts sampling on a system already inside its measurement
// window (a run restored from a checkpoint that carried no collector
// state). Epoch edges stay on the measurement-start grid, so the series
// lines up with a cold run's from the next edge onward; the interval
// [start, clock) that was simulated before the restore lands in the
// first emitted epoch.
func (c *Collector) Resync(start, clock uint64) {
	if c.begun {
		return
	}
	c.Begin(start)
	for c.nextAt <= clock {
		c.nextAt += c.epochCycles
	}
}

// ShouldSample reports whether the clock has crossed the next epoch
// edge. It is the hot-loop guard, kept to two compares.
func (c *Collector) ShouldSample(cycle uint64) bool {
	return c.begun && !c.finished && cycle >= c.nextAt
}

// NextSampleAt returns the next nominal epoch edge, or ^uint64(0) when
// the collector is not currently sampling (before Begin, after Finish).
// The event engine clamps its clock skips to this edge so the epoch
// series closes at exactly the cycles a lockstep run closes at; without
// the clamp a jump across an edge would merge epochs into one wider one.
func (c *Collector) NextSampleAt() uint64 {
	if !c.begun || c.finished {
		return ^uint64(0)
	}
	return c.nextAt
}

// Sample closes the current epoch at cycle given the cumulative totals
// at that boundary.
func (c *Collector) Sample(cycle uint64, cum Totals) {
	if !c.begun || c.finished || cycle <= c.lastEnd {
		return
	}
	c.emit(cycle, cum)
	for c.nextAt <= cycle {
		c.nextAt += c.epochCycles
	}
}

func (c *Collector) emit(cycle uint64, cum Totals) {
	c.series = append(c.series, EpochSample{
		Index:      len(c.series),
		StartCycle: c.lastEnd,
		EndCycle:   cycle,
		Totals:     cum.delta(c.cum),
	})
	c.cum = cum
	c.lastEnd = cycle
}

// Finish flushes the final (usually partial) epoch and mirrors the
// run's totals into the registry. Called once when measurement ends;
// further calls are no-ops.
func (c *Collector) Finish(cycle uint64, cum Totals) {
	if !c.begun || c.finished {
		return
	}
	if cycle > c.lastEnd {
		c.emit(cycle, cum)
	}
	c.finished = true
	c.mirror()
}

// Series returns the epoch samples (read-only; owned by the collector).
func (c *Collector) Series() []EpochSample { return c.series }

// MeasuredCycles returns the sampled span's width.
func (c *Collector) MeasuredCycles() uint64 { return c.lastEnd - c.startCycle }

// SummedTotals re-adds every epoch's deltas; by construction it equals
// the cumulative totals at the last epoch edge. Exposed for the
// series-sums-to-totals property test.
func (c *Collector) SummedTotals() Totals {
	var sum Totals
	for _, e := range c.series {
		sum = sum.add(e.Totals)
	}
	return sum
}

// mirror copies the end-of-run totals and lifecycle counters into the
// registry, so the exported metric snapshot and the expvar view agree
// with the series.
func (c *Collector) mirror() {
	r := c.reg
	r.Counter("sim.epochs").Store(uint64(len(c.series)))
	r.Counter("sim.measured_cycles").Store(c.MeasuredCycles())
	r.Counter("sim.instructions").Store(c.cum.Instructions())
	llc := c.cum.LLC
	r.Counter("llc.accesses").Store(llc.Accesses)
	r.Counter("llc.hits").Store(llc.Hits)
	r.Counter("llc.misses").Store(llc.Misses)
	r.Counter("llc.late_hits").Store(llc.LateHits)
	r.Counter("llc.prefetch_issued").Store(llc.PrefetchIssued)
	r.Counter("llc.prefetch_fills").Store(llc.PrefetchFills)
	r.Counter("llc.prefetch_redundant").Store(llc.PrefetchHits)
	r.Counter("llc.useful_prefetch").Store(llc.UsefulPrefetch)
	r.Counter("llc.late_prefetch").Store(llc.LatePrefetch)
	r.Counter("llc.unused_prefetch").Store(llc.UnusedPrefetch)
	r.Counter("llc.evictions").Store(llc.Evictions)
	r.Counter("llc.writebacks").Store(llc.Writebacks)
	d := c.cum.DRAM
	r.Counter("dram.reads").Store(d.Reads)
	r.Counter("dram.writes").Store(d.Writes)
	r.Counter("dram.row_hits").Store(d.RowHits)
	r.Counter("dram.row_empty").Store(d.RowEmpty)
	r.Counter("dram.row_conflicts").Store(d.RowConflicts)
	r.Counter("dram.bus_busy").Store(d.BusBusy)
	if c.lc != nil {
		t := c.lc.Totals()
		r.Counter("prefetch.issued").Store(t.Issued)
		r.Counter("prefetch.queue_dropped").Store(t.QueueDropped)
		r.Counter("prefetch.redundant").Store(t.Redundant)
		r.Counter("prefetch.fills").Store(t.Fills)
		r.Counter("prefetch.timely").Store(t.Timely)
		r.Counter("prefetch.late").Store(t.Late)
		r.Counter("prefetch.unused_evicted").Store(t.UnusedEvicted)
		r.Gauge("prefetch.in_flight").Set(int64(t.InFlight))
	}
}
