package telemetry

// LifecycleStats counts one core's (or, summed, one system's)
// prefetched blocks through the lifecycle state machine:
//
//	predicted ──(queue full)──▶ QueueDropped
//	    │
//	    ▼ issued into the cache
//	  lookup ──(block present)──▶ Redundant
//	    │
//	    ▼ Fills (line installed, fill in flight)
//	    ├──(demand use, fill already complete)──▶ Timely
//	    ├──(demand use, fill still in MSHR)─────▶ Late
//	    ├──(evicted, never used)────────────────▶ UnusedEvicted
//	    └──(still resident, unused)─────────────▶ InFlight
//
// Every predicted address lands in exactly one terminal bucket, so the
// counters conserve exactly:
//
//	Issued == QueueDropped + Redundant + Fills
//	Fills  == Timely + Late + UnusedEvicted + InFlight
//
// InFlight is maintained as an explicit up/down counter (not derived),
// which is what makes Conserves a real invariant check rather than a
// tautology.
type LifecycleStats struct {
	Issued        uint64 // addresses the prefetcher predicted
	QueueDropped  uint64 // dropped by the full per-core prefetch queue
	Redundant     uint64 // block already present (or in flight) at the fill level
	Fills         uint64 // lines actually installed by a prefetch
	Timely        uint64 // first demand use after the fill completed
	Late          uint64 // first demand use while the fill was still in flight
	UnusedEvicted uint64 // evicted without any demand use
	InFlight      uint64 // filled, still resident, not yet used
}

// Add returns the element-wise sum.
func (s LifecycleStats) Add(o LifecycleStats) LifecycleStats {
	return LifecycleStats{
		Issued:        s.Issued + o.Issued,
		QueueDropped:  s.QueueDropped + o.QueueDropped,
		Redundant:     s.Redundant + o.Redundant,
		Fills:         s.Fills + o.Fills,
		Timely:        s.Timely + o.Timely,
		Late:          s.Late + o.Late,
		UnusedEvicted: s.UnusedEvicted + o.UnusedEvicted,
		InFlight:      s.InFlight + o.InFlight,
	}
}

// Conserves reports whether the lifecycle identities hold: every
// predicted address is in exactly one terminal bucket.
func (s LifecycleStats) Conserves() bool {
	return s.Issued == s.QueueDropped+s.Redundant+s.Fills &&
		s.Fills == s.Timely+s.Late+s.UnusedEvicted+s.InFlight
}

// frac returns n/d, or 0 for an empty denominator.
func frac(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// TimelyFraction is timely uses over prefetch fills — the survey's
// timeliness metric.
func (s LifecycleStats) TimelyFraction() float64 { return frac(s.Timely, s.Fills) }

// LateFraction is late uses over prefetch fills.
func (s LifecycleStats) LateFraction() float64 { return frac(s.Late, s.Fills) }

// UnusedFraction is unused evictions over prefetch fills.
func (s LifecycleStats) UnusedFraction() float64 { return frac(s.UnusedEvicted, s.Fills) }

// Used returns the demand-used fills (timely + late).
func (s LifecycleStats) Used() uint64 { return s.Timely + s.Late }

// Lifecycle tracks per-core prefetch lifecycle counters. It implements
// the structural interface cache.PrefetchProbe for the cache-side
// events and takes the queue-side events (Predicted, QueueDropped)
// directly from the system's issue path. It belongs to the simulation
// goroutine: counters are plain integers on the hot path, and the
// Collector mirrors them into atomic registry metrics at epoch
// boundaries for concurrent observers.
type Lifecycle struct {
	cores []LifecycleStats

	// Optional distributions, attached by a Collector: margins records,
	// for timely uses, the cycles between fill completion and the first
	// use's data-availability; lateness records, for late uses, the
	// cycles the demand access had to wait on the in-flight fill.
	margins  *Histogram
	lateness *Histogram
}

// NewLifecycle returns a tracker for the given core count.
func NewLifecycle(cores int) *Lifecycle {
	return &Lifecycle{cores: make([]LifecycleStats, cores)}
}

// AttachHistograms wires the optional use-margin and late-wait
// distributions (either may be nil).
func (l *Lifecycle) AttachHistograms(margins, lateness *Histogram) {
	l.margins, l.lateness = margins, lateness
}

// Reset zeroes every counter. The system calls this at the warm-up to
// measurement transition, mirroring the cache stats reset (which also
// clears the prefetched attribution of resident lines, so no stale
// warm-up fill can reach a terminal bucket after the reset).
func (l *Lifecycle) Reset() {
	for i := range l.cores {
		l.cores[i] = LifecycleStats{}
	}
}

// SetCore overwrites core i's counters. Checkpoint restore only;
// out-of-range indices are dropped like every other event.
func (l *Lifecycle) SetCore(i int, s LifecycleStats) {
	if l.ok(i) {
		l.cores[i] = s
	}
}

// NumCores returns the tracked core count.
func (l *Lifecycle) NumCores() int { return len(l.cores) }

// Core returns core i's counters.
func (l *Lifecycle) Core(i int) LifecycleStats { return l.cores[i] }

// Totals sums all cores.
func (l *Lifecycle) Totals() LifecycleStats {
	var t LifecycleStats
	for _, c := range l.cores {
		t = t.Add(c)
	}
	return t
}

// ok guards against out-of-range core indices (a probe wired to a
// mis-attributed line); such events are dropped rather than crashing
// the run.
func (l *Lifecycle) ok(core int) bool { return core >= 0 && core < len(l.cores) }

// Predicted records n addresses predicted by core's prefetcher.
func (l *Lifecycle) Predicted(core, n int) {
	if l.ok(core) {
		l.cores[core].Issued += uint64(n)
	}
}

// QueueDropped records n predictions dropped by the full prefetch queue.
func (l *Lifecycle) QueueDropped(core, n int) {
	if l.ok(core) {
		l.cores[core].QueueDropped += uint64(n)
	}
}

// PrefetchRedundant implements cache.PrefetchProbe: the block was
// already present (or in flight) at the fill level.
func (l *Lifecycle) PrefetchRedundant(core int) {
	if l.ok(core) {
		l.cores[core].Redundant++
	}
}

// PrefetchFill implements cache.PrefetchProbe: a line was installed.
func (l *Lifecycle) PrefetchFill(core int) {
	if l.ok(core) {
		l.cores[core].Fills++
		l.cores[core].InFlight++
	}
}

// PrefetchUse implements cache.PrefetchProbe: first demand use of a
// prefetched line. late reports whether the fill was still in flight;
// cycles is the late wait (late) or the completion-to-use margin
// (timely).
func (l *Lifecycle) PrefetchUse(core int, late bool, cycles uint64) {
	if !l.ok(core) {
		return
	}
	c := &l.cores[core]
	if c.InFlight > 0 {
		c.InFlight--
	}
	if late {
		c.Late++
		if l.lateness != nil {
			l.lateness.Observe(cycles)
		}
		return
	}
	c.Timely++
	if l.margins != nil {
		l.margins.Observe(cycles)
	}
}

// PrefetchEvictUnused implements cache.PrefetchProbe: a prefetched line
// left the cache without ever being used.
func (l *Lifecycle) PrefetchEvictUnused(core int) {
	if !l.ok(core) {
		return
	}
	c := &l.cores[core]
	if c.InFlight > 0 {
		c.InFlight--
	}
	c.UnusedEvicted++
}
