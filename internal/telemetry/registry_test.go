package telemetry

import (
	"testing"
)

func TestValidName(t *testing.T) {
	good := []string{"a", "llc.misses", "prefetch.use_margin_cycles", "a1.b2", "x_y.z"}
	for _, n := range good {
		if !validName(n) {
			t.Errorf("validName(%q) = false, want true", n)
		}
	}
	bad := []string{"", ".", "a.", ".a", "a..b", "A", "llc-misses", "llc misses", "Ünïcode"}
	for _, n := range bad {
		if validName(n) {
			t.Errorf("validName(%q) = true, want false", n)
		}
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("llc.misses")
	c1.Add(3)
	c2 := r.Counter("llc.misses")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	if got := c2.Value(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
	if r.Gauge("queue.depth") != r.Gauge("queue.depth") {
		t.Fatal("same name returned distinct gauges")
	}
	if r.Histogram("lat") != r.Histogram("lat") {
		t.Fatal("same name returned distinct histograms")
	}
}

func TestRegistryCrossTypePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.y")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("x.y")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("Not A Name")
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	g := r.Gauge("b.level")
	c.Add(10)
	g.Set(-2)
	before := r.Snapshot()
	c.Add(5)
	g.Add(7)
	r.Counter("c.fresh").Inc()
	after := r.Snapshot()
	d := after.Delta(before)
	if d["a.count"] != 5 {
		t.Errorf("counter delta = %d, want 5", d["a.count"])
	}
	if d["b.level"] != 7 {
		t.Errorf("gauge delta = %d, want 7", d["b.level"])
	}
	if d["c.fresh"] != 1 {
		t.Errorf("fresh counter delta = %d, want 1", d["c.fresh"])
	}
	// A key present only in prev reads as negative in the delta.
	d2 := before.Delta(after)
	if d2["c.fresh"] != -1 {
		t.Errorf("removed-key delta = %d, want -1", d2["c.fresh"])
	}
	names := d.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestSnapshotIncludesHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(3)
	h.Observe(5)
	s := r.Snapshot()
	if s["lat.count"] != 2 || s["lat.sum"] != 8 {
		t.Fatalf("histogram snapshot = count %d sum %d, want 2 and 8", s["lat.count"], s["lat.sum"])
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(1000)
	b := h.Buckets()
	if b[0] != 1 { // v = 0
		t.Errorf("bucket 0 = %d, want 1", b[0])
	}
	if b[1] != 1 { // v = 1
		t.Errorf("bucket 1 = %d, want 1", b[1])
	}
	if b[2] != 2 { // v in [2,3]
		t.Errorf("bucket 2 = %d, want 2", b[2])
	}
	if b[10] != 1 { // 1000 in [512,1023]
		t.Errorf("bucket 10 = %d, want 1", b[10])
	}
	if h.Count() != 5 || h.Sum() != 1006 {
		t.Fatalf("count/sum = %d/%d, want 5/1006", h.Count(), h.Sum())
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	// p50 lands in bucket 2 → upper bound 3.
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := h.Quantile(1); got != BucketUpper(10) {
		t.Errorf("p100 = %d, want %d", got, BucketUpper(10))
	}
	if got := h.Mean(); got != 1006.0/5 {
		t.Errorf("mean = %v, want %v", got, 1006.0/5)
	}
}

func TestBucketUpper(t *testing.T) {
	if BucketUpper(0) != 0 || BucketUpper(-1) != 0 {
		t.Error("bucket 0 upper must be 0")
	}
	if BucketUpper(1) != 1 || BucketUpper(3) != 7 {
		t.Error("power-of-two bucket upper bounds wrong")
	}
	if BucketUpper(64) != ^uint64(0) || BucketUpper(100) != ^uint64(0) {
		t.Error("top bucket upper must saturate")
	}
}
