package telemetry

import (
	"fmt"
	"strings"

	"bingo/internal/checkpoint"
	"bingo/internal/cpu"
)

// Checkpoint persistence. A Collector's state rides inside the system
// checkpoint so a paused-and-resumed run reports the identical epoch
// series a straight-through run would. The layout is column-oriented
// (one array per field), which keeps the checkpoint schema token list
// independent of the number of epochs, cores, and registered metrics —
// the golden-schema test in the harness pins the resulting layout.

// SaveState serialises the collector. It is deterministic: metric names
// are sorted, series are stored in order.
func (c *Collector) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	w.U64(c.epochCycles)
	w.Int(c.cores)
	w.Bool(c.begun)
	w.Bool(c.finished)
	w.U64(c.startCycle)
	w.U64(c.lastEnd)
	w.U64(c.nextAt)
	saveTotalsRows(w, []Totals{c.cum}, c.cores)
	starts := make([]uint64, len(c.series))
	ends := make([]uint64, len(c.series))
	rows := make([]Totals, len(c.series))
	for i, e := range c.series {
		starts[i] = e.StartCycle
		ends[i] = e.EndCycle
		rows[i] = e.Totals
	}
	w.U64s(starts)
	w.U64s(ends)
	saveTotalsRows(w, rows, c.cores)
	c.reg.saveState(w)
	return w.Err()
}

// LoadState restores a collector saved by SaveState into c, which must
// be configured identically: same epoch length, same core count (bound
// via BindCores). Restoring a mismatched collector is an error — the
// series would silently diverge from the original run's otherwise.
func (c *Collector) LoadState(r *checkpoint.Reader) error {
	return c.loadState(r, true)
}

// DiscardState consumes (and validates the framing of) a collector
// state section without keeping it. The system uses it when a
// checkpoint carries telemetry state but the restoring run has no
// collector attached.
func DiscardState(r *checkpoint.Reader) error {
	return NewCollector(0).loadState(r, false)
}

func (c *Collector) loadState(r *checkpoint.Reader, strict bool) error {
	r.Version(1)
	epochCycles := r.U64()
	cores := r.Int()
	begun := r.Bool()
	finished := r.Bool()
	startCycle := r.U64()
	lastEnd := r.U64()
	nextAt := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if strict {
		if epochCycles != c.epochCycles {
			return fmt.Errorf("telemetry: checkpoint epoch length %d, collector configured for %d", epochCycles, c.epochCycles)
		}
		if cores != c.cores {
			return fmt.Errorf("telemetry: checkpoint covers %d cores, collector bound to %d", cores, c.cores)
		}
		if c.begun {
			return fmt.Errorf("telemetry: restore into a collector that already began sampling")
		}
	}
	if cores < 0 {
		return fmt.Errorf("telemetry: checkpoint core count %d negative", cores)
	}
	cums, err := loadTotalsRows(r, 1, cores)
	if err != nil {
		return err
	}
	starts := r.U64s()
	ends := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(starts) != len(ends) {
		return fmt.Errorf("telemetry: checkpoint epoch bounds disagree: %d starts, %d ends", len(starts), len(ends))
	}
	rows, err := loadTotalsRows(r, len(starts), cores)
	if err != nil {
		return err
	}
	for i := range starts {
		if ends[i] < starts[i] {
			return fmt.Errorf("telemetry: checkpoint epoch %d ends before it starts", i)
		}
	}
	reg := NewRegistry()
	if err := reg.loadState(r); err != nil {
		return err
	}
	if !strict {
		return nil
	}

	// Commit: adopt the decoded state and replay the registry into the
	// collector's own (so the histogram instances the lifecycle holds
	// stay the live ones).
	c.begun = begun
	c.finished = finished
	c.startCycle = startCycle
	c.lastEnd = lastEnd
	c.nextAt = nextAt
	c.cum = cums[0]
	c.series = c.series[:0]
	for i := range starts {
		c.series = append(c.series, EpochSample{Index: i, StartCycle: starts[i], EndCycle: ends[i], Totals: rows[i]})
	}
	reg.copyInto(c.reg)
	return nil
}

// saveTotalsRows writes rows as column arrays: 5 CPU columns flattened
// row-major over cores, then the 12 LLC and 6 DRAM columns. Missing
// per-core entries (a zero Totals) pad as zeros.
func saveTotalsRows(w *checkpoint.Writer, rows []Totals, cores int) {
	cpuCol := func(get func(cpu.Stats) uint64) {
		flat := make([]uint64, 0, len(rows)*cores)
		for _, row := range rows {
			for ci := 0; ci < cores; ci++ {
				var s cpu.Stats
				if ci < len(row.PerCore) {
					s = row.PerCore[ci]
				}
				flat = append(flat, get(s))
			}
		}
		w.U64s(flat)
	}
	cpuCol(func(s cpu.Stats) uint64 { return s.Instructions })
	cpuCol(func(s cpu.Stats) uint64 { return s.MemOps })
	cpuCol(func(s cpu.Stats) uint64 { return s.Loads })
	cpuCol(func(s cpu.Stats) uint64 { return s.Stores })
	cpuCol(func(s cpu.Stats) uint64 { return s.MemStall })
	col := func(get func(Totals) uint64) {
		vals := make([]uint64, len(rows))
		for i, row := range rows {
			vals[i] = get(row)
		}
		w.U64s(vals)
	}
	col(func(t Totals) uint64 { return t.LLC.Accesses })
	col(func(t Totals) uint64 { return t.LLC.Hits })
	col(func(t Totals) uint64 { return t.LLC.Misses })
	col(func(t Totals) uint64 { return t.LLC.LateHits })
	col(func(t Totals) uint64 { return t.LLC.PrefetchIssued })
	col(func(t Totals) uint64 { return t.LLC.PrefetchFills })
	col(func(t Totals) uint64 { return t.LLC.PrefetchHits })
	col(func(t Totals) uint64 { return t.LLC.UsefulPrefetch })
	col(func(t Totals) uint64 { return t.LLC.LatePrefetch })
	col(func(t Totals) uint64 { return t.LLC.UnusedPrefetch })
	col(func(t Totals) uint64 { return t.LLC.Evictions })
	col(func(t Totals) uint64 { return t.LLC.Writebacks })
	col(func(t Totals) uint64 { return t.DRAM.Reads })
	col(func(t Totals) uint64 { return t.DRAM.Writes })
	col(func(t Totals) uint64 { return t.DRAM.RowHits })
	col(func(t Totals) uint64 { return t.DRAM.RowEmpty })
	col(func(t Totals) uint64 { return t.DRAM.RowConflicts })
	col(func(t Totals) uint64 { return t.DRAM.BusBusy })
}

// loadTotalsRows reads n rows written by saveTotalsRows.
//
//obs:write checkpoint restore rebuilds the snapshot rows it returns; Totals embeds the core stats types, so the type-based owner looks like simulator state
func loadTotalsRows(r *checkpoint.Reader, n, cores int) ([]Totals, error) {
	rows := make([]Totals, n)
	for i := range rows {
		rows[i].PerCore = make([]cpu.Stats, cores)
	}
	cpuCol := func(set func(*cpu.Stats, uint64)) error {
		flat := r.U64s()
		if err := r.Err(); err != nil {
			return err
		}
		if len(flat) != n*cores {
			return fmt.Errorf("telemetry: checkpoint cpu column holds %d values, want %d", len(flat), n*cores)
		}
		for i := range rows {
			for ci := 0; ci < cores; ci++ {
				set(&rows[i].PerCore[ci], flat[i*cores+ci])
			}
		}
		return nil
	}
	if err := cpuCol(func(s *cpu.Stats, v uint64) { s.Instructions = v }); err != nil {
		return nil, err
	}
	if err := cpuCol(func(s *cpu.Stats, v uint64) { s.MemOps = v }); err != nil {
		return nil, err
	}
	if err := cpuCol(func(s *cpu.Stats, v uint64) { s.Loads = v }); err != nil {
		return nil, err
	}
	if err := cpuCol(func(s *cpu.Stats, v uint64) { s.Stores = v }); err != nil {
		return nil, err
	}
	if err := cpuCol(func(s *cpu.Stats, v uint64) { s.MemStall = v }); err != nil {
		return nil, err
	}
	col := func(set func(*Totals, uint64)) error {
		vals := r.U64s()
		if err := r.Err(); err != nil {
			return err
		}
		if len(vals) != n {
			return fmt.Errorf("telemetry: checkpoint column holds %d values, want %d", len(vals), n)
		}
		for i := range rows {
			set(&rows[i], vals[i])
		}
		return nil
	}
	for _, step := range []func(*Totals, uint64){
		func(t *Totals, v uint64) { t.LLC.Accesses = v },
		func(t *Totals, v uint64) { t.LLC.Hits = v },
		func(t *Totals, v uint64) { t.LLC.Misses = v },
		func(t *Totals, v uint64) { t.LLC.LateHits = v },
		func(t *Totals, v uint64) { t.LLC.PrefetchIssued = v },
		func(t *Totals, v uint64) { t.LLC.PrefetchFills = v },
		func(t *Totals, v uint64) { t.LLC.PrefetchHits = v },
		func(t *Totals, v uint64) { t.LLC.UsefulPrefetch = v },
		func(t *Totals, v uint64) { t.LLC.LatePrefetch = v },
		func(t *Totals, v uint64) { t.LLC.UnusedPrefetch = v },
		func(t *Totals, v uint64) { t.LLC.Evictions = v },
		func(t *Totals, v uint64) { t.LLC.Writebacks = v },
		func(t *Totals, v uint64) { t.DRAM.Reads = v },
		func(t *Totals, v uint64) { t.DRAM.Writes = v },
		func(t *Totals, v uint64) { t.DRAM.RowHits = v },
		func(t *Totals, v uint64) { t.DRAM.RowEmpty = v },
		func(t *Totals, v uint64) { t.DRAM.RowConflicts = v },
		func(t *Totals, v uint64) { t.DRAM.BusBusy = v },
	} {
		if err := col(step); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// joinNames packs a sorted name list into one string column; the names
// themselves cannot contain the separator (validName forbids it).
func joinNames(names []string) string { return strings.Join(names, "\n") }

func splitNames(joined string) []string {
	if joined == "" {
		return nil
	}
	return strings.Split(joined, "\n")
}

// saveState serialises every registered metric, names sorted.
func (r *Registry) saveState(w *checkpoint.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cn := sortedKeys(r.counters)
	w.String(joinNames(cn))
	cvals := make([]uint64, len(cn))
	for i, name := range cn {
		cvals[i] = r.counters[name].Value()
	}
	w.U64s(cvals)
	gn := sortedKeys(r.gauges)
	w.String(joinNames(gn))
	gvals := make([]int64, len(gn))
	for i, name := range gn {
		gvals[i] = r.gauges[name].Value()
	}
	w.I64s(gvals)
	hn := sortedKeys(r.hists)
	w.String(joinNames(hn))
	counts := make([]uint64, 0, len(hn)*HistogramBuckets)
	sums := make([]uint64, len(hn))
	ns := make([]uint64, len(hn))
	for i, name := range hn {
		h := r.hists[name]
		b := h.Buckets()
		counts = append(counts, b[:]...)
		sums[i] = h.Sum()
		ns[i] = h.Count()
	}
	w.U64s(counts)
	w.U64s(sums)
	w.U64s(ns)
}

// loadState restores metrics into r, creating them by name. Malformed
// names or inconsistent column lengths are errors, never panics — the
// input is an untrusted file.
func (r *Registry) loadState(rd *checkpoint.Reader) error {
	cn := splitNames(rd.String())
	cvals := rd.U64s()
	gn := splitNames(rd.String())
	gvals := rd.I64s()
	hn := splitNames(rd.String())
	counts := rd.U64s()
	sums := rd.U64s()
	ns := rd.U64s()
	if err := rd.Err(); err != nil {
		return err
	}
	if len(cvals) != len(cn) || len(gvals) != len(gn) ||
		len(counts) != len(hn)*HistogramBuckets || len(sums) != len(hn) || len(ns) != len(hn) {
		return fmt.Errorf("telemetry: checkpoint registry columns inconsistent")
	}
	seen := make(map[string]bool, len(cn)+len(gn)+len(hn))
	for _, names := range [][]string{cn, gn, hn} {
		for _, name := range names {
			if !validName(name) {
				return fmt.Errorf("telemetry: checkpoint metric name %q invalid", name)
			}
			if seen[name] {
				return fmt.Errorf("telemetry: checkpoint metric name %q duplicated", name)
			}
			seen[name] = true
		}
	}
	for i, name := range cn {
		r.Counter(name).Store(cvals[i])
	}
	for i, name := range gn {
		r.Gauge(name).Set(gvals[i])
	}
	for i, name := range hn {
		var b [HistogramBuckets]uint64
		copy(b[:], counts[i*HistogramBuckets:(i+1)*HistogramBuckets])
		r.Histogram(name).restore(b, sums[i], ns[i])
	}
	return nil
}

// copyInto replays r's metrics into dst, preserving dst's existing
// metric instances (pointers held elsewhere keep working).
func (r *Registry) copyInto(dst *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		//lint:ignore locklint dst is a distinct registry and copyInto runs one direction only (epoch swap); same-type lock keys alias
		dst.Counter(name).Store(c.Value())
	}
	for name, g := range r.gauges {
		//lint:ignore locklint dst is a distinct registry and copyInto runs one direction only (epoch swap); same-type lock keys alias
		dst.Gauge(name).Set(g.Value())
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		//lint:ignore locklint dst is a distinct registry and copyInto runs one direction only (epoch swap); same-type lock keys alias
		dst.Histogram(name).restore(h.Buckets(), h.Sum(), h.Count())
	}
}

// reset zeroes the histogram (the measurement-start boundary).
func (h *Histogram) reset() {
	h.restore([HistogramBuckets]uint64{}, 0, 0)
}

// restore overwrites the histogram's state (checkpoint restore only).
func (h *Histogram) restore(counts [HistogramBuckets]uint64, sum, n uint64) {
	for i := range h.counts {
		h.counts[i].Store(counts[i])
	}
	h.sum.Store(sum)
	h.n.Store(n)
}
