package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// collected builds a small finished collector with a lifecycle bound.
func collected(t *testing.T) *Collector {
	t.Helper()
	lc := NewLifecycle(2)
	c := NewCollector(100)
	c.BindCores(2)
	c.BindLifecycle(lc)
	c.Workload = "em3d"
	c.Prefetcher = "bingo"
	c.Begin(0)
	lc.Predicted(0, 4)
	lc.PrefetchFill(0)
	lc.PrefetchFill(0)
	lc.PrefetchFill(0)
	lc.PrefetchRedundant(0)
	lc.PrefetchUse(0, false, 10)
	lc.PrefetchUse(0, true, 3)
	c.Sample(100, totalsAt(10, 2))
	c.Finish(190, totalsAt(25, 2))
	return c
}

func TestWriteJSON(t *testing.T) {
	c := collected(t)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Workload != "em3d" || doc.Prefetcher != "bingo" {
		t.Errorf("labels = %q/%q", doc.Workload, doc.Prefetcher)
	}
	if len(doc.Epochs) != 2 {
		t.Fatalf("exported %d epochs, want 2", len(doc.Epochs))
	}
	if doc.Lifecycle == nil || !doc.Lifecycle.Conserves {
		t.Fatalf("lifecycle report missing or non-conserving: %+v", doc.Lifecycle)
	}
	if doc.Lifecycle.Totals.Issued != 4 {
		t.Errorf("lifecycle issued = %d, want 4", doc.Lifecycle.Totals.Issued)
	}
	if doc.Metrics["prefetch.use_margin_cycles.count"] != 1 {
		t.Errorf("metrics snapshot missing margin histogram: %v", doc.Metrics)
	}

	// Export is byte-deterministic.
	var buf2 bytes.Buffer
	if err := c.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("repeated JSON export differs")
	}
}

func TestWriteCSV(t *testing.T) {
	c := collected(t)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 epochs
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "index,start_cycle,end_cycle,cycles,instructions,ipc") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,100,100,") {
		t.Fatalf("first CSV row = %q", lines[1])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := collected(t)
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var counters, metas, spans int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "C":
			counters++
		case "M":
			metas++
		case "X":
			spans++
		}
	}
	if metas != 1 || spans != 1 {
		t.Errorf("trace has %d metadata and %d span events, want 1 and 1", metas, spans)
	}
	// 6 counter tracks per epoch × 2 epochs.
	if counters != 12 {
		t.Errorf("trace has %d counter events, want 12", counters)
	}
	if doc.OtherData["workload"] != "em3d" {
		t.Errorf("otherData = %v", doc.OtherData)
	}
}

func TestRound6(t *testing.T) {
	if round6(1.23456789) != 1.234568 {
		t.Errorf("round6(1.23456789) = %v", round6(1.23456789))
	}
	if round6(0) != 0 {
		t.Errorf("round6(0) = %v", round6(0))
	}
}
