package telemetry

import (
	"bingo/internal/cache"
	"bingo/internal/cpu"
	"bingo/internal/dram"
)

// Totals is one cumulative observation of the simulated machine's
// counters: per-core CPU stats plus the shared LLC and DRAM stats, all
// as they stand at a single cycle boundary. The Collector differences
// consecutive Totals to produce epoch samples.
type Totals struct {
	PerCore []cpu.Stats `json:"per_core"`
	LLC     cache.Stats `json:"llc"`
	DRAM    dram.Stats  `json:"dram"`
}

// delta returns t - prev element-wise. A shorter (or nil) prev reads as
// zeros, which makes the first epoch after measurement start absorb
// everything since the stats reset.
func (t Totals) delta(prev Totals) Totals {
	d := Totals{
		PerCore: make([]cpu.Stats, len(t.PerCore)),
		LLC:     t.LLC.Delta(prev.LLC),
		DRAM:    t.DRAM.Delta(prev.DRAM),
	}
	for i := range t.PerCore {
		var p cpu.Stats
		if i < len(prev.PerCore) {
			p = prev.PerCore[i]
		}
		d.PerCore[i] = t.PerCore[i].Delta(p)
	}
	return d
}

// add returns t + o element-wise (the inverse of delta; used by tests
// to prove the series sums back to the end-of-run totals).
func (t Totals) add(o Totals) Totals {
	n := len(t.PerCore)
	if len(o.PerCore) > n {
		n = len(o.PerCore)
	}
	sum := Totals{PerCore: make([]cpu.Stats, n)}
	for i := 0; i < n; i++ {
		var a, b cpu.Stats
		if i < len(t.PerCore) {
			a = t.PerCore[i]
		}
		if i < len(o.PerCore) {
			b = o.PerCore[i]
		}
		sum.PerCore[i] = cpu.Stats{
			Instructions: a.Instructions + b.Instructions,
			MemOps:       a.MemOps + b.MemOps,
			Loads:        a.Loads + b.Loads,
			Stores:       a.Stores + b.Stores,
			MemStall:     a.MemStall + b.MemStall,
		}
	}
	sum.LLC = addCacheStats(t.LLC, o.LLC)
	sum.DRAM = dram.Stats{
		Reads:        t.DRAM.Reads + o.DRAM.Reads,
		Writes:       t.DRAM.Writes + o.DRAM.Writes,
		RowHits:      t.DRAM.RowHits + o.DRAM.RowHits,
		RowEmpty:     t.DRAM.RowEmpty + o.DRAM.RowEmpty,
		RowConflicts: t.DRAM.RowConflicts + o.DRAM.RowConflicts,
		BusBusy:      t.DRAM.BusBusy + o.DRAM.BusBusy,
	}
	return sum
}

func addCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:       a.Accesses + b.Accesses,
		Hits:           a.Hits + b.Hits,
		Misses:         a.Misses + b.Misses,
		LateHits:       a.LateHits + b.LateHits,
		PrefetchIssued: a.PrefetchIssued + b.PrefetchIssued,
		PrefetchFills:  a.PrefetchFills + b.PrefetchFills,
		PrefetchHits:   a.PrefetchHits + b.PrefetchHits,
		UsefulPrefetch: a.UsefulPrefetch + b.UsefulPrefetch,
		LatePrefetch:   a.LatePrefetch + b.LatePrefetch,
		UnusedPrefetch: a.UnusedPrefetch + b.UnusedPrefetch,
		Evictions:      a.Evictions + b.Evictions,
		Writebacks:     a.Writebacks + b.Writebacks,
	}
}

// Instructions sums retired instructions across cores.
func (t Totals) Instructions() uint64 {
	var n uint64
	for _, c := range t.PerCore {
		n += c.Instructions
	}
	return n
}

// EpochSample is one interval of the epoch time-series: the counter
// deltas accumulated over [StartCycle, EndCycle). Epochs are nominally
// EpochCycles wide, but the simulation clock advances in jumps (the
// loop fast-forwards provably idle stretches), so an epoch ends at the
// first cycle boundary at or past its nominal edge and a single jump
// across several edges yields one correspondingly wider epoch.
type EpochSample struct {
	Index      int    `json:"index"`
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`
	Totals
}

// Cycles is the epoch's width.
func (e EpochSample) Cycles() uint64 { return e.EndCycle - e.StartCycle }

// IPC is the epoch's aggregate instructions-per-cycle: total retired
// instructions over the epoch width (cores run in lockstep, so this is
// also the sum of per-core IPCs).
func (e EpochSample) IPC() float64 {
	if e.Cycles() == 0 {
		return 0
	}
	return float64(e.Instructions()) / float64(e.Cycles())
}

// MPKI is LLC demand misses per kilo-instruction within the epoch.
func (e EpochSample) MPKI() float64 { return e.LLC.MPKI(e.Instructions()) }

// SelfCoverage is the epoch's self-relative coverage: useful prefetches
// over (demand misses + useful prefetches). Like Results.Coverage it is
// computed against this run's own demand stream, not a baseline run.
func (e EpochSample) SelfCoverage() float64 {
	return frac(e.LLC.UsefulPrefetch, e.LLC.Misses+e.LLC.UsefulPrefetch)
}

// Accuracy is useful prefetches over prefetch fills within the epoch.
func (e EpochSample) Accuracy() float64 {
	return frac(e.LLC.UsefulPrefetch, e.LLC.PrefetchFills)
}

// RowHitRate is the DRAM row-buffer hit rate within the epoch.
func (e EpochSample) RowHitRate() float64 { return e.DRAM.RowHitRate() }
