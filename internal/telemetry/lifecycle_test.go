package telemetry

import "testing"

func TestLifecycleConservation(t *testing.T) {
	l := NewLifecycle(2)

	// Core 0: predicts 6; 1 dropped at the queue, 1 redundant, 4 fill.
	// Of the fills: 1 timely use, 1 late use, 1 unused eviction, 1 still
	// resident.
	l.Predicted(0, 6)
	l.QueueDropped(0, 1)
	l.PrefetchRedundant(0)
	for i := 0; i < 4; i++ {
		l.PrefetchFill(0)
	}
	l.PrefetchUse(0, false, 120)
	l.PrefetchUse(0, true, 35)
	l.PrefetchEvictUnused(0)

	// Core 1: everything dropped.
	l.Predicted(1, 3)
	l.QueueDropped(1, 3)

	c0 := l.Core(0)
	want := LifecycleStats{Issued: 6, QueueDropped: 1, Redundant: 1, Fills: 4, Timely: 1, Late: 1, UnusedEvicted: 1, InFlight: 1}
	if c0 != want {
		t.Fatalf("core 0 stats = %+v, want %+v", c0, want)
	}
	if !c0.Conserves() {
		t.Fatal("core 0 does not conserve")
	}
	tot := l.Totals()
	if !tot.Conserves() {
		t.Fatalf("totals do not conserve: %+v", tot)
	}
	if tot.Issued != 9 || tot.QueueDropped != 4 {
		t.Fatalf("totals = %+v", tot)
	}
	if got := tot.Used(); got != 2 {
		t.Fatalf("Used = %d, want 2", got)
	}
}

func TestLifecycleFractions(t *testing.T) {
	var s LifecycleStats
	if s.TimelyFraction() != 0 || s.LateFraction() != 0 || s.UnusedFraction() != 0 {
		t.Fatal("zero stats must yield zero fractions")
	}
	s = LifecycleStats{Fills: 8, Timely: 4, Late: 2, UnusedEvicted: 1, InFlight: 1, Issued: 8}
	if s.TimelyFraction() != 0.5 {
		t.Errorf("timely fraction = %v, want 0.5", s.TimelyFraction())
	}
	if s.LateFraction() != 0.25 {
		t.Errorf("late fraction = %v, want 0.25", s.LateFraction())
	}
	if s.UnusedFraction() != 0.125 {
		t.Errorf("unused fraction = %v, want 0.125", s.UnusedFraction())
	}
}

func TestLifecycleHistograms(t *testing.T) {
	l := NewLifecycle(1)
	var margins, lateness Histogram
	l.AttachHistograms(&margins, &lateness)
	l.PrefetchFill(0)
	l.PrefetchFill(0)
	l.PrefetchUse(0, false, 100)
	l.PrefetchUse(0, true, 7)
	if margins.Count() != 1 || margins.Sum() != 100 {
		t.Errorf("margins = %d obs / sum %d, want 1/100", margins.Count(), margins.Sum())
	}
	if lateness.Count() != 1 || lateness.Sum() != 7 {
		t.Errorf("lateness = %d obs / sum %d, want 1/7", lateness.Count(), lateness.Sum())
	}
}

func TestLifecycleResetAndBounds(t *testing.T) {
	l := NewLifecycle(1)
	l.Predicted(0, 2)
	l.PrefetchFill(0)
	l.Reset()
	if l.Totals() != (LifecycleStats{}) {
		t.Fatalf("reset left state: %+v", l.Totals())
	}
	// Out-of-range cores are dropped, not a crash.
	l.Predicted(5, 1)
	l.PrefetchFill(-1)
	l.PrefetchUse(7, true, 1)
	l.PrefetchEvictUnused(9)
	l.QueueDropped(-2, 1)
	l.PrefetchRedundant(3)
	if l.Totals() != (LifecycleStats{}) {
		t.Fatalf("out-of-range events recorded: %+v", l.Totals())
	}
	// A use without a tracked fill (possible across a stats reset) must
	// not underflow InFlight.
	l.PrefetchUse(0, false, 1)
	if l.Core(0).InFlight != 0 {
		t.Fatalf("InFlight underflowed: %+v", l.Core(0))
	}
}
