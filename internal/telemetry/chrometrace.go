package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: the epoch series rendered as counter
// tracks that chrome://tracing and Perfetto plot directly. The format
// nominally interprets "ts" as microseconds; we emit simulated cycles
// (1 cycle = 1 "µs"), which preserves relative shape and keeps the
// axes meaningful as cycle counts. Documented in DESIGN.md §8.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	TS    uint64 `json:"ts"`
	Dur   uint64 `json:"dur,omitempty"`
	PID   int    `json:"pid"`
	TID   int    `json:"tid,omitempty"`
	//conc:core-local export-time scratch, built and marshalled on the exporting goroutine
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the top-level trace file object.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	//conc:core-local export-time scratch, built and marshalled on the exporting goroutine
	OtherData map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the epoch series as a Chrome trace_event
// file: one counter track per headline metric, per-core IPC tracks,
// and a span covering the measurement window.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	label := "bingosim"
	if c.Workload != "" || c.Prefetcher != "" {
		label = fmt.Sprintf("bingosim %s/%s", c.Workload, c.Prefetcher)
	}
	events := []traceEvent{{
		Name:  "process_name",
		Phase: "M",
		PID:   0,
		Args:  map[string]any{"name": label},
	}}
	if c.begun {
		events = append(events, traceEvent{
			Name:  "measurement",
			Phase: "X",
			TS:    c.startCycle,
			Dur:   c.lastEnd - c.startCycle,
			PID:   0,
			TID:   1,
			Args:  map[string]any{"epochs": len(c.series)},
		})
	}
	counter := func(name string, ts uint64, args map[string]any) {
		events = append(events, traceEvent{Name: name, Phase: "C", TS: ts, PID: 0, Args: args})
	}
	for _, e := range c.series {
		ts := e.StartCycle
		counter("IPC", ts, map[string]any{"ipc": round6(e.IPC())})
		counter("MPKI", ts, map[string]any{"mpki": round6(e.MPKI())})
		counter("self-coverage %", ts, map[string]any{"cov": round6(e.SelfCoverage() * 100)})
		counter("accuracy %", ts, map[string]any{"acc": round6(e.Accuracy() * 100)})
		counter("row-hit %", ts, map[string]any{"rowhit": round6(e.RowHitRate() * 100)})
		ipcArgs := make(map[string]any, len(e.PerCore))
		for ci, cs := range e.PerCore {
			v := 0.0
			if e.Cycles() > 0 {
				v = float64(cs.Instructions) / float64(e.Cycles())
			}
			ipcArgs[fmt.Sprintf("core%d", ci)] = round6(v)
		}
		counter("per-core IPC", ts, ipcArgs)
	}
	doc := traceDoc{
		TraceEvents: events,
		OtherData: map[string]any{
			"workload":        c.Workload,
			"prefetcher":      c.Prefetcher,
			"epoch_cycles":    c.epochCycles,
			"time_unit":       "simulated cycles (rendered as µs)",
			"generator":       "bingo internal/telemetry",
			"epochs_recorded": len(c.series),
		},
	}
	buf, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// round6 trims float noise so trace files stay byte-deterministic
// across platforms with the same inputs.
func round6(v float64) float64 {
	return float64(int64(v*1e6+0.5)) / 1e6
}
