package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Debug HTTP server: net/http/pprof profiles, expvar, and a JSON view
// of a Registry, served on a loopback (or any) address behind the CLIs'
// -debug-addr flag. The server only ever reads atomic metric values, so
// it is safe to run alongside a live simulation; it cannot perturb
// simulated state.

// debugReg is the registry currently exposed via expvar. expvar.Publish
// is global and permanent, so the expvar hook is installed once and
// indirects through this pointer; starting a new debug server swaps the
// target.
var (
	debugReg   atomic.Pointer[Registry]
	expvarOnce sync.Once
	//conc:immutable assigned once at package init; only ever called through expvarOnce
	expvarInstal = func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			if r := debugReg.Load(); r != nil {
				return r.Snapshot()
			}
			return Snapshot{}
		}))
	}
)

// DebugServer is a running debug endpoint. Close it to stop serving.
type DebugServer struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string

	srv *http.Server
	//conc:immutable set once by StartDebugServer; the listener is internally synchronized
	ln net.Listener
}

// StartDebugServer serves /debug/pprof/*, /debug/vars (expvar, with the
// registry under the "telemetry" key), and /debug/metrics (the registry
// snapshot as plain JSON) on addr. It returns once the listener is
// bound; serving proceeds on a background goroutine.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		return nil, fmt.Errorf("telemetry: debug server needs a registry")
	}
	expvarOnce.Do(expvarInstal)
	debugReg.Store(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := reg.Snapshot()
		out := make(map[string]int64, len(snap))
		for _, name := range snap.Names() {
			out[name] = snap[name]
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			// The client hung up mid-response; nothing to clean up.
			return
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	d := &DebugServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go func() {
		// Serve returns ErrServerClosed (or a listener error) once Close
		// runs; either way there is nobody left to report it to.
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error {
	return d.srv.Close()
}
