// Package telemetry is the simulator's observability layer: a
// dependency-light metrics registry (typed counters, gauges and
// histograms with stable names and snapshot/delta semantics), a
// prefetch lifecycle tracker that follows every prefetched block from
// issue to first demand use or eviction, and a cycle-sampled epoch
// time-series collector with JSON/CSV and Chrome trace_event exporters.
//
// Telemetry is strictly an observer. Attaching a Collector to a system
// never changes simulated state: results and stdout are byte-identical
// with telemetry on or off (the harness pins this with a differential
// oracle). The Collector is checkpoint-aware — its state rides in the
// system checkpoint, so a paused-and-resumed run reports the identical
// epoch series a straight-through run would.
//
// Threading: the Lifecycle and the Collector's series belong to the
// simulation goroutine, like every other simulator component. Registry
// values are atomics so the optional debug HTTP server (expvar, pprof)
// may read them while a simulation runs.
package telemetry

// DefaultEpochCycles is the default sampling period of the epoch
// time-series: one sample per this many simulated cycles. At the paper's
// full per-core budgets a run spans a few million cycles, so the default
// yields a series of dozens of epochs — fine-grained enough to see
// phase behaviour, small enough to stay negligible in memory and time.
const DefaultEpochCycles = 50_000
