package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"bingo/internal/cache"
	"bingo/internal/checkpoint"
	"bingo/internal/cpu"
	"bingo/internal/dram"
)

// totalsAt fabricates cumulative totals that grow linearly with n.
func totalsAt(n uint64, cores int) Totals {
	t := Totals{
		LLC: cache.Stats{Accesses: 10 * n, Hits: 7 * n, Misses: 3 * n,
			PrefetchIssued: 2 * n, PrefetchFills: n, UsefulPrefetch: n / 2, LatePrefetch: n / 4, UnusedPrefetch: n / 8},
		DRAM: dram.Stats{Reads: 4 * n, Writes: n, RowHits: 2 * n},
	}
	for i := 0; i < cores; i++ {
		t.PerCore = append(t.PerCore, cpu.Stats{Instructions: n * uint64(i+1), Loads: n, Stores: n / 2, MemOps: n + n/2, MemStall: n / 3})
	}
	return t
}

func TestCollectorSeriesSumsToTotals(t *testing.T) {
	c := NewCollector(100)
	c.BindCores(2)
	c.Begin(1000)
	if !c.Begun() || c.Finished() {
		t.Fatal("Begin state wrong")
	}
	if c.ShouldSample(1099) {
		t.Fatal("sampled before the first edge")
	}
	if !c.ShouldSample(1100) {
		t.Fatal("no sample at the first edge")
	}
	c.Sample(1100, totalsAt(10, 2))
	// A jump across several edges yields one wider epoch.
	if !c.ShouldSample(1460) {
		t.Fatal("no sample after a multi-edge jump")
	}
	c.Sample(1460, totalsAt(50, 2))
	if c.ShouldSample(1499) {
		t.Fatal("edge not realigned after the jump")
	}
	final := totalsAt(64, 2)
	c.Finish(1525, final)
	if !c.Finished() {
		t.Fatal("Finish did not mark the collector finished")
	}

	series := c.Series()
	if len(series) != 3 {
		t.Fatalf("series has %d epochs, want 3", len(series))
	}
	bounds := [][2]uint64{{1000, 1100}, {1100, 1460}, {1460, 1525}}
	for i, e := range series {
		if e.Index != i || e.StartCycle != bounds[i][0] || e.EndCycle != bounds[i][1] {
			t.Errorf("epoch %d = [%d,%d) index %d, want [%d,%d) index %d",
				i, e.StartCycle, e.EndCycle, e.Index, bounds[i][0], bounds[i][1], i)
		}
	}
	if got := c.MeasuredCycles(); got != 525 {
		t.Errorf("measured cycles = %d, want 525", got)
	}
	if sum := c.SummedTotals(); !reflect.DeepEqual(sum, final) {
		t.Fatalf("summed series %+v != final totals %+v", sum, final)
	}

	// Finish is idempotent and mirrors into the registry.
	c.Finish(2000, totalsAt(99, 2))
	if len(c.Series()) != 3 {
		t.Fatal("Finish after Finish extended the series")
	}
	snap := c.Registry().Snapshot()
	if snap["llc.misses"] != int64(final.LLC.Misses) {
		t.Errorf("mirrored llc.misses = %d, want %d", snap["llc.misses"], final.LLC.Misses)
	}
	if snap["sim.instructions"] != int64(final.Instructions()) {
		t.Errorf("mirrored sim.instructions = %d, want %d", snap["sim.instructions"], final.Instructions())
	}
	if snap["sim.epochs"] != 3 {
		t.Errorf("mirrored sim.epochs = %d, want 3", snap["sim.epochs"])
	}
}

func TestCollectorResync(t *testing.T) {
	c := NewCollector(100)
	c.BindCores(1)
	c.Resync(1000, 1350)
	if !c.Begun() {
		t.Fatal("Resync did not begin sampling")
	}
	// Next edge stays on the measurement-start grid: 1400, not 1450.
	if c.ShouldSample(1399) {
		t.Fatal("edge before 1400")
	}
	if !c.ShouldSample(1400) {
		t.Fatal("no edge at 1400")
	}
	c.Sample(1400, totalsAt(40, 1))
	s := c.Series()
	if len(s) != 1 || s[0].StartCycle != 1000 || s[0].EndCycle != 1400 {
		t.Fatalf("first resynced epoch = %+v, want [1000,1400)", s[0])
	}
	// Resync on a collector that already began is a no-op.
	c.Resync(0, 0)
	if c.Series()[0].StartCycle != 1000 {
		t.Fatal("second Resync rewound the collector")
	}
}

func TestCollectorDefaultEpoch(t *testing.T) {
	c := NewCollector(0)
	if c.EpochCycles() != DefaultEpochCycles {
		t.Fatalf("default epoch = %d, want %d", c.EpochCycles(), DefaultEpochCycles)
	}
}

// roundTrip saves c into a checkpoint container and restores it into a
// fresh collector configured by mk.
func roundTrip(t *testing.T, c *Collector, mk func() *Collector) (*Collector, error) {
	t.Helper()
	fw := checkpoint.NewFileWriter()
	if err := fw.Add("telemetry", c.SaveState); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fr, err := checkpoint.NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := fr.Section("telemetry")
	if err != nil {
		t.Fatal(err)
	}
	c2 := mk()
	if err := c2.LoadState(r); err != nil {
		return nil, err
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return c2, nil
}

func TestCollectorStateRoundTrip(t *testing.T) {
	lc := NewLifecycle(2)
	c := NewCollector(100)
	c.BindCores(2)
	c.BindLifecycle(lc)
	c.Begin(500)
	lc.Predicted(0, 3)
	lc.PrefetchFill(0)
	lc.PrefetchFill(0)
	lc.PrefetchRedundant(0)
	lc.PrefetchUse(0, false, 42)
	lc.PrefetchUse(1, true, 9) // core 1 use without fill: clamped, still recorded
	c.Sample(600, totalsAt(10, 2))
	c.Sample(705, totalsAt(30, 2))

	c2, err := roundTrip(t, c, func() *Collector {
		c2 := NewCollector(100)
		c2.BindCores(2)
		c2.BindLifecycle(NewLifecycle(2))
		return c2
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c2.Series(), c.Series()) {
		t.Fatalf("restored series differs:\n%+v\n%+v", c2.Series(), c.Series())
	}
	if c2.startCycle != 500 || c2.lastEnd != 705 || c2.nextAt != c.nextAt || !c2.begun || c2.finished {
		t.Fatalf("restored scalars differ: %+v vs %+v", c2, c)
	}
	// The margin histogram (held by the restored collector's lifecycle)
	// carries the observation.
	if c2.margins.Count() != 1 || c2.margins.Sum() != 42 {
		t.Fatalf("restored margins = %d/%d, want 1/42", c2.margins.Count(), c2.margins.Sum())
	}
	if c2.lateness.Count() != 1 || c2.lateness.Sum() != 9 {
		t.Fatalf("restored lateness = %d/%d, want 1/9", c2.lateness.Count(), c2.lateness.Sum())
	}

	// Both continue identically.
	final := totalsAt(44, 2)
	c.Finish(790, final)
	c2.Finish(790, final)
	if !reflect.DeepEqual(c2.Series(), c.Series()) {
		t.Fatal("post-restore continuation diverges")
	}
}

func TestCollectorStateMismatchErrors(t *testing.T) {
	c := NewCollector(100)
	c.BindCores(2)
	c.Begin(0)
	c.Sample(150, totalsAt(5, 2))

	if _, err := roundTrip(t, c, func() *Collector {
		c2 := NewCollector(999) // wrong epoch length
		c2.BindCores(2)
		return c2
	}); err == nil || !strings.Contains(err.Error(), "epoch length") {
		t.Fatalf("epoch mismatch error = %v", err)
	}
	if _, err := roundTrip(t, c, func() *Collector {
		c2 := NewCollector(100)
		c2.BindCores(3) // wrong core count
		return c2
	}); err == nil || !strings.Contains(err.Error(), "cores") {
		t.Fatalf("core mismatch error = %v", err)
	}
	if _, err := roundTrip(t, c, func() *Collector {
		c2 := NewCollector(100)
		c2.BindCores(2)
		c2.Begin(7) // already sampling
		return c2
	}); err == nil || !strings.Contains(err.Error(), "already began") {
		t.Fatalf("already-begun error = %v", err)
	}
}

func TestDiscardState(t *testing.T) {
	c := NewCollector(100)
	c.BindCores(2)
	c.Begin(0)
	c.Sample(120, totalsAt(3, 2))

	fw := checkpoint.NewFileWriter()
	if err := fw.Add("telemetry", c.SaveState); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fr, err := checkpoint.NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := fr.Section("telemetry")
	if err != nil {
		t.Fatal(err)
	}
	if err := DiscardState(r); err != nil {
		t.Fatal(err)
	}
	// DiscardState must consume the section exactly.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
