package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("llc.misses").Add(42)
	reg.Gauge("queue.depth").Set(-3)

	d, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	var metrics map[string]int64
	getJSON(t, fmt.Sprintf("http://%s/debug/metrics", d.Addr), &metrics)
	if metrics["llc.misses"] != 42 || metrics["queue.depth"] != -3 {
		t.Fatalf("metrics = %v", metrics)
	}

	var vars map[string]json.RawMessage
	getJSON(t, fmt.Sprintf("http://%s/debug/vars", d.Addr), &vars)
	raw, ok := vars["telemetry"]
	if !ok {
		t.Fatalf("expvar missing telemetry key: %v", vars)
	}
	var snap map[string]int64
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap["llc.misses"] != 42 {
		t.Fatalf("expvar telemetry = %v", snap)
	}

	// pprof index answers.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", d.Addr))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %s", resp.Status)
	}
}

func TestDebugServerSwapsRegistry(t *testing.T) {
	// A second server retargets the global expvar hook instead of
	// panicking on a duplicate Publish.
	r1 := NewRegistry()
	r1.Counter("a.one").Inc()
	d1, err := StartDebugServer("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	r2.Counter("b.two").Add(2)
	d2, err := StartDebugServer("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	var metrics map[string]int64
	getJSON(t, fmt.Sprintf("http://%s/debug/metrics", d2.Addr), &metrics)
	if metrics["b.two"] != 2 {
		t.Fatalf("metrics = %v", metrics)
	}
	if err := StartDebugServerErrCheck(); err != nil {
		t.Fatal(err)
	}
}

// StartDebugServerErrCheck exists to exercise the nil-registry error.
func StartDebugServerErrCheck() error {
	if _, err := StartDebugServer("127.0.0.1:0", nil); err == nil {
		return fmt.Errorf("nil registry accepted")
	}
	return nil
}
