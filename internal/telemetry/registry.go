package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric name rules: lowercase, dot-separated words of [a-z0-9_],
// e.g. "llc.misses" or "prefetch.use_margin_cycles". Stable names are
// the contract that lets exported series be compared across runs and
// releases; the registry panics on a malformed name because a bad name
// is a programming error, not a runtime condition.
func validName(name string) bool {
	if name == "" {
		return false
	}
	prevDot := true // leading dot (or empty word) is invalid
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			prevDot = false
		case c == '.':
			if prevDot {
				return false
			}
			prevDot = true
		default:
			return false
		}
	}
	return !prevDot
}

// Counter is a monotonically increasing metric. The zero value is
// usable; obtain named instances from a Registry. Reads and writes are
// atomic so a debug server can observe a counter mid-run.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the value. It exists for mirroring totals computed
// elsewhere into the registry (and for checkpoint restore) — ordinary
// instrumentation should only ever Add.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable up/down metric.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistogramBuckets is the fixed bucket count of every Histogram:
// bucket i holds observations v with bits.Len64(v) == i, i.e. bucket 0
// is exactly v=0 and bucket i>0 spans [2^(i-1), 2^i). Power-of-two
// buckets cover the full uint64 range with bounded, schema-stable
// state, which keeps histograms cheap to update and trivial to
// checkpoint.
const HistogramBuckets = 65

// Histogram accumulates a distribution of uint64 observations in
// power-of-two buckets.
type Histogram struct {
	counts [HistogramBuckets]atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Buckets returns a copy of the per-bucket counts.
func (h *Histogram) Buckets() [HistogramBuckets]uint64 {
	var out [HistogramBuckets]uint64
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// BucketUpper returns the largest value bucket i can hold.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(i) - 1
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) of the
// recorded distribution: the upper edge of the bucket containing it.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(HistogramBuckets - 1)
}

// Registry holds named metrics. Lookup is idempotent: asking for the
// same name twice returns the same instance, so components can resolve
// their metrics independently without coordinating initialisation.
// Asking for a name already registered as a different metric type
// panics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// checkName panics on malformed names or cross-type collisions.
func (r *Registry) checkName(name, kind string) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a histogram", name))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time flattened view of a registry. Counters
// appear under their own name, gauges likewise; every histogram
// contributes "<name>.count" and "<name>.sum". Values are int64 so one
// type covers all metric kinds; counters that exceed int64 wrap (they
// never do in practice — the largest counters grow with simulated
// cycles).
type Snapshot map[string]int64

// Names returns the snapshot's keys in sorted order, for deterministic
// rendering.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Delta returns s - prev per key, over the union of both key sets
// (missing keys read as zero). Snapshot-then-delta is how epoch and
// interval reporting is built from cumulative metrics.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		out[k] = v - prev[k]
	}
	for k, v := range prev {
		if _, ok := s[k]; !ok {
			out[k] = -v
		}
	}
	return out
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counters {
		out[name] = int64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		out[name+".count"] = int64(h.Count())
		out[name+".sum"] = int64(h.Sum())
	}
	return out
}

// sortedKeys returns the sorted keys of a metric map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
