package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// EpochRow is one exported epoch: the raw sample plus the derived
// rates, so downstream tooling never has to re-implement the metric
// definitions.
type EpochRow struct {
	EpochSample
	CyclesWide   uint64  `json:"cycles"`
	Instrs       uint64  `json:"instructions"`
	IPCVal       float64 `json:"ipc"`
	MPKIVal      float64 `json:"mpki"`
	SelfCovVal   float64 `json:"self_coverage"`
	AccuracyVal  float64 `json:"accuracy"`
	RowHitVal    float64 `json:"row_hit_rate"`
	LateFracEst  float64 `json:"late_prefetch_fraction"`
	PrefetchFill uint64  `json:"prefetch_fills"`
}

func newEpochRow(e EpochSample) EpochRow {
	return EpochRow{
		EpochSample:  e,
		CyclesWide:   e.Cycles(),
		Instrs:       e.Instructions(),
		IPCVal:       e.IPC(),
		MPKIVal:      e.MPKI(),
		SelfCovVal:   e.SelfCoverage(),
		AccuracyVal:  e.Accuracy(),
		RowHitVal:    e.RowHitRate(),
		LateFracEst:  frac(e.LLC.LatePrefetch, e.LLC.PrefetchFills),
		PrefetchFill: e.LLC.PrefetchFills,
	}
}

// LifecycleReport is the exported lifecycle section: per-core counters,
// the system totals, and the derived timeliness fractions.
type LifecycleReport struct {
	PerCore        []LifecycleStats `json:"per_core,omitempty"`
	Totals         LifecycleStats   `json:"totals"`
	TimelyFraction float64          `json:"timely_fraction"`
	LateFraction   float64          `json:"late_fraction"`
	UnusedFraction float64          `json:"unused_fraction"`
	Conserves      bool             `json:"conserves"`
}

func (c *Collector) lifecycleReport() *LifecycleReport {
	if c.lc == nil {
		return nil
	}
	rep := &LifecycleReport{Totals: c.lc.Totals()}
	for i := 0; i < c.lc.NumCores(); i++ {
		rep.PerCore = append(rep.PerCore, c.lc.Core(i))
	}
	rep.TimelyFraction = rep.Totals.TimelyFraction()
	rep.LateFraction = rep.Totals.LateFraction()
	rep.UnusedFraction = rep.Totals.UnusedFraction()
	rep.Conserves = rep.Totals.Conserves()
	return rep
}

// Document is the JSON export layout.
type Document struct {
	Workload    string     `json:"workload,omitempty"`
	Prefetcher  string     `json:"prefetcher,omitempty"`
	EpochCycles uint64     `json:"epoch_cycles"`
	StartCycle  uint64     `json:"start_cycle"`
	EndCycle    uint64     `json:"end_cycle"`
	Epochs      []EpochRow `json:"epochs"`
	//conc:core-local export-time snapshot, built and marshalled on the exporting goroutine
	Lifecycle *LifecycleReport `json:"lifecycle,omitempty"`
	//conc:core-local export-time snapshot, built and marshalled on the exporting goroutine
	Metrics Snapshot `json:"metrics"`
}

// Export builds the JSON document for the collected run.
func (c *Collector) Export() Document {
	doc := Document{
		Workload:    c.Workload,
		Prefetcher:  c.Prefetcher,
		EpochCycles: c.epochCycles,
		StartCycle:  c.startCycle,
		EndCycle:    c.lastEnd,
		Epochs:      make([]EpochRow, 0, len(c.series)),
		Lifecycle:   c.lifecycleReport(),
		Metrics:     c.reg.Snapshot(),
	}
	for _, e := range c.series {
		doc.Epochs = append(doc.Epochs, newEpochRow(e))
	}
	return doc
}

// WriteJSON writes the full telemetry document as indented JSON.
// Snapshot maps marshal with sorted keys, so the output is
// byte-deterministic for identical runs.
func (c *Collector) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(c.Export(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteCSV writes the epoch series as a CSV table of the headline
// rates, one row per epoch.
func (c *Collector) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"index", "start_cycle", "end_cycle", "cycles", "instructions", "ipc",
		"llc_accesses", "llc_misses", "mpki", "self_coverage", "accuracy",
		"prefetch_fills", "late_prefetch", "dram_reads", "dram_writes", "row_hit_rate",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range c.series {
		row := []string{
			fmt.Sprintf("%d", e.Index),
			fmt.Sprintf("%d", e.StartCycle),
			fmt.Sprintf("%d", e.EndCycle),
			fmt.Sprintf("%d", e.Cycles()),
			fmt.Sprintf("%d", e.Instructions()),
			fmt.Sprintf("%.6f", e.IPC()),
			fmt.Sprintf("%d", e.LLC.Accesses),
			fmt.Sprintf("%d", e.LLC.Misses),
			fmt.Sprintf("%.6f", e.MPKI()),
			fmt.Sprintf("%.6f", e.SelfCoverage()),
			fmt.Sprintf("%.6f", e.Accuracy()),
			fmt.Sprintf("%d", e.LLC.PrefetchFills),
			fmt.Sprintf("%d", e.LLC.LatePrefetch),
			fmt.Sprintf("%d", e.DRAM.Reads),
			fmt.Sprintf("%d", e.DRAM.Writes),
			fmt.Sprintf("%.6f", e.RowHitRate()),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
