package stride

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func access(pc mem.PC, block uint64) prefetch.AccessEvent {
	return prefetch.AccessEvent{PC: pc, Addr: mem.Addr(block << mem.BlockShift)}
}

func TestStrideLearnsAfterConfidence(t *testing.T) {
	s := MustNew(DefaultConfig())
	var got []mem.Addr
	// Stride 5 stream from one PC: first few accesses build confidence.
	for i := uint64(0); i < 6; i++ {
		got = s.OnAccess(access(0x400, 100+i*5))
	}
	if len(got) != 2 {
		t.Fatalf("confident stride should prefetch degree 2, got %v", got)
	}
	if got[0] != mem.Addr((130)<<mem.BlockShift) || got[1] != mem.Addr((135)<<mem.BlockShift) {
		t.Fatalf("prefetches = %v", got)
	}
}

func TestNoPrefetchBeforeConfidence(t *testing.T) {
	s := MustNew(DefaultConfig())
	if got := s.OnAccess(access(0x400, 100)); got != nil {
		t.Fatal("first access should not prefetch")
	}
	if got := s.OnAccess(access(0x400, 105)); got != nil {
		t.Fatal("second access should not prefetch (stride just learned)")
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	s := MustNew(DefaultConfig())
	for i := uint64(0); i < 6; i++ {
		s.OnAccess(access(0x400, 100+i*5))
	}
	// Break the stride twice: confidence decays below threshold.
	s.OnAccess(access(0x400, 1000))
	got := s.OnAccess(access(0x400, 5000))
	if got != nil {
		t.Fatalf("broken stride should stop prefetching, got %v", got)
	}
}

func TestPerPCIsolation(t *testing.T) {
	s := MustNew(DefaultConfig())
	for i := uint64(0); i < 6; i++ {
		s.OnAccess(access(0x400, 100+i*5))
	}
	if got := s.OnAccess(access(0x999, 200)); got != nil {
		t.Fatal("a different PC has no history")
	}
}

func TestZeroStrideNeverPrefetches(t *testing.T) {
	s := MustNew(DefaultConfig())
	var got []mem.Addr
	for i := 0; i < 8; i++ {
		got = s.OnAccess(access(0x400, 100))
	}
	if got != nil {
		t.Fatalf("zero stride prefetched %v", got)
	}
}

func TestStrideIdentity(t *testing.T) {
	s := MustNew(DefaultConfig())
	if s.Name() != "stride" || s.StorageBytes() <= 0 {
		t.Fatal("identity wrong")
	}
	s.OnEviction(0)
}

func TestNextLine(t *testing.T) {
	p := NextLine{N: 3}
	got := p.OnAccess(access(1, 10))
	if len(got) != 3 {
		t.Fatalf("NextLine{3} issued %d", len(got))
	}
	for i, a := range got {
		if a != mem.Addr((11+uint64(i))<<mem.BlockShift) {
			t.Fatalf("prefetch[%d] = %v", i, a)
		}
	}
	if got := (&NextLine{}).OnAccess(access(1, 10)); len(got) != 1 {
		t.Fatal("zero N should default to 1")
	}
	if (&NextLine{}).Name() != "nextline" || (&NextLine{}).StorageBytes() != 0 {
		t.Fatal("identity wrong")
	}
	(&NextLine{}).OnEviction(0)
}
