package stride

import (
	"fmt"

	"bingo/internal/checkpoint"
)

// encodeRPTEntries is the value codec for the reference prediction table.
func encodeRPTEntries(w *checkpoint.Writer, vals []rptEntry) {
	lastBlocks := make([]uint64, len(vals))
	strides := make([]int64, len(vals))
	confs := make([]int, len(vals))
	for i, v := range vals {
		lastBlocks[i] = v.lastBlock
		strides[i] = v.stride
		confs[i] = v.conf
	}
	w.U64s(lastBlocks)
	w.I64s(strides)
	w.Ints(confs)
}

// decodeRPTEntries mirrors encodeRPTEntries.
func decodeRPTEntries(r *checkpoint.Reader) []rptEntry {
	lastBlocks := r.U64s()
	strides := r.I64s()
	confs := r.Ints()
	if r.Err() != nil || len(strides) != len(lastBlocks) || len(confs) != len(lastBlocks) {
		return nil
	}
	out := make([]rptEntry, len(lastBlocks))
	for i := range out {
		out[i] = rptEntry{lastBlock: lastBlocks[i], stride: strides[i], conf: confs[i]}
	}
	return out
}

// SaveState implements checkpoint.Checkpointable.
func (s *Stride) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	return s.rpt.SaveState(w, encodeRPTEntries)
}

// LoadState implements checkpoint.Checkpointable.
func (s *Stride) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	if err := s.rpt.LoadState(r, decodeRPTEntries); err != nil {
		return fmt.Errorf("stride: %w", err)
	}
	bad := false
	s.rpt.Range(func(key uint64, v *rptEntry) bool {
		bad = v.conf < 0 || v.conf > s.cfg.ConfMax
		return !bad
	})
	if bad {
		return fmt.Errorf("stride: snapshot confidence outside [0,%d]", s.cfg.ConfMax)
	}
	return nil
}

// SaveState implements checkpoint.Checkpointable. NextLine is stateless
// (N is configuration), so the section is version-only; it exists so the
// system checkpointer can treat every prefetcher uniformly.
func (p NextLine) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable.
func (p NextLine) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	return r.Err()
}
