// Package stride implements two simple reference prefetchers used for
// sanity baselines and ablations: a classic per-PC stride prefetcher
// (reference prediction table with confidence counters, Baer & Chen style)
// and a next-N-line prefetcher.
package stride

import (
	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// Config parameterises the stride prefetcher.
type Config struct {
	TableEntries  int
	TableWays     int
	ConfThreshold int // confidence needed before prefetching
	ConfMax       int
	Degree        int
}

// DefaultConfig returns a 256-entry, degree-2 stride prefetcher.
func DefaultConfig() Config {
	return Config{TableEntries: 256, TableWays: 4, ConfThreshold: 2, ConfMax: 3, Degree: 2}
}

type rptEntry struct {
	lastBlock uint64
	stride    int64
	conf      int
}

// Stride is the per-PC stride prefetcher.
type Stride struct {
	//ckpt:skip construction parameter, re-supplied by New; LoadState validates against it
	cfg Config
	//conc:core-local each core owns its stride prefetcher and its reference table
	rpt *prefetch.Table[rptEntry]

	// addrBuf backs the slice OnAccess returns; reused across calls so
	// the per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr
}

// New builds a stride prefetcher.
func New(cfg Config) (*Stride, error) {
	rpt, err := prefetch.NewTable[rptEntry](cfg.TableEntries, cfg.TableWays)
	if err != nil {
		return nil, err
	}
	return &Stride{cfg: cfg, rpt: rpt}, nil
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *Stride {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Factory returns a per-core factory.
func Factory(cfg Config) prefetch.Factory {
	return func(int) prefetch.Prefetcher { return MustNew(cfg) }
}

// Name implements prefetch.Prefetcher.
func (s *Stride) Name() string { return "stride" }

// OnAccess implements prefetch.Prefetcher.
func (s *Stride) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	block := ev.Addr.BlockNumber()
	e, ok := s.rpt.Lookup(uint64(ev.PC), true)
	if !ok {
		s.rpt.Insert(uint64(ev.PC), rptEntry{lastBlock: block})
		return nil
	}
	stride := int64(block) - int64(e.lastBlock)
	if stride == e.stride && stride != 0 {
		if e.conf < s.cfg.ConfMax {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = stride
		}
	}
	e.lastBlock = block
	if e.conf < s.cfg.ConfThreshold || e.stride == 0 {
		return nil
	}
	out := s.addrBuf[:0]
	for i := 1; i <= s.cfg.Degree; i++ {
		t := int64(block) + e.stride*int64(i)
		if t <= 0 {
			break
		}
		out = append(out, mem.Addr(uint64(t)<<mem.BlockShift)) //hot:alloc reused buffer grows to steady-state capacity
	}
	s.addrBuf = out
	return out
}

// OnEviction implements prefetch.Prefetcher.
func (s *Stride) OnEviction(mem.Addr) {}

// StorageBytes implements prefetch.Prefetcher.
func (s *Stride) StorageBytes() int {
	return s.rpt.Capacity() * (1 + 4 + 16 + 26 + 8 + 2) / 8
}

var _ prefetch.Prefetcher = (*Stride)(nil)

// NextLine prefetches the next n sequential blocks on every access.
type NextLine struct {
	//ckpt:skip configuration constant set at construction; NextLine itself is stateless
	N int

	// addrBuf backs the slice OnAccess returns; reused across calls so
	// the per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr
}

// Name implements prefetch.Prefetcher.
func (p *NextLine) Name() string { return "nextline" }

// OnAccess implements prefetch.Prefetcher.
func (p *NextLine) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	n := p.N
	if n <= 0 {
		n = 1
	}
	out := p.addrBuf[:0]
	block := ev.Addr.BlockNumber()
	for i := 1; i <= n; i++ {
		out = append(out, mem.Addr((block+uint64(i))<<mem.BlockShift)) //hot:alloc reused buffer grows to steady-state capacity
	}
	p.addrBuf = out
	return out
}

// OnEviction implements prefetch.Prefetcher.
func (*NextLine) OnEviction(mem.Addr) {}

// StorageBytes implements prefetch.Prefetcher.
func (*NextLine) StorageBytes() int { return 0 }

var _ prefetch.Prefetcher = (*NextLine)(nil)
