package fdp

import (
	"fmt"

	"bingo/internal/checkpoint"
)

// SaveState implements checkpoint.Checkpointable: the throttle state,
// then the wrapped prefetcher's own sections (which must itself be
// checkpointable).
func (f *FDP) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	w.Int(f.degree)
	w.U64(f.useful)
	w.U64(f.total)
	w.U64(f.stats.Epochs)
	w.U64(f.stats.Raised)
	w.U64(f.stats.Lowered)
	w.U64(f.stats.Truncated)
	inner, ok := f.inner.(checkpoint.Checkpointable)
	if !ok {
		return fmt.Errorf("fdp: wrapped prefetcher %q is not checkpointable", f.inner.Name())
	}
	return inner.SaveState(w)
}

// LoadState implements checkpoint.Checkpointable.
func (f *FDP) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	degree := r.Int()
	useful := r.U64()
	total := r.U64()
	var s Stats
	s.Epochs = r.U64()
	s.Raised = r.U64()
	s.Lowered = r.U64()
	s.Truncated = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if degree < f.cfg.MinDegree || degree > f.cfg.MaxDegree {
		return fmt.Errorf("fdp: snapshot degree %d outside [%d,%d]", degree, f.cfg.MinDegree, f.cfg.MaxDegree)
	}
	if useful > total {
		return fmt.Errorf("fdp: snapshot counts %d useful of %d outcomes", useful, total)
	}
	inner, ok := f.inner.(checkpoint.Checkpointable)
	if !ok {
		return fmt.Errorf("fdp: wrapped prefetcher %q is not checkpointable", f.inner.Name())
	}
	if err := inner.LoadState(r); err != nil {
		return fmt.Errorf("fdp inner: %w", err)
	}
	f.degree = degree
	f.useful = useful
	f.total = total
	f.stats = s
	return nil
}
