// Package fdp implements Feedback-Directed Prefetching (Srinath et al.,
// HPCA'07 — the Bingo paper's reference [41]) as a wrapper around any
// prefetcher: prefetch outcomes (useful use vs unused eviction) are
// accumulated over epochs, and the wrapped prefetcher's issue rate is
// throttled when measured accuracy falls below thresholds. This is the
// classic bandwidth-protection mechanism the paper's §I motivates when it
// argues that multi-core designs "hit the bandwidth wall first".
package fdp

import (
	"fmt"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// Config parameterises the throttle.
type Config struct {
	// EpochOutcomes is how many resolved prefetch outcomes close an epoch.
	EpochOutcomes uint64
	// HighAccuracy / LowAccuracy bound the throttle decisions: accuracy
	// above High raises the degree cap, below Low lowers it.
	HighAccuracy float64
	LowAccuracy  float64
	// MaxDegree / MinDegree bound the per-access issue cap.
	MaxDegree int
	MinDegree int
}

// DefaultConfig follows the original proposal's spirit: 90%/40% accuracy
// thresholds over 256-outcome epochs.
func DefaultConfig() Config {
	return Config{
		EpochOutcomes: 256,
		HighAccuracy:  0.90,
		LowAccuracy:   0.40,
		MaxDegree:     32,
		MinDegree:     1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.EpochOutcomes == 0 {
		return fmt.Errorf("fdp: epoch must be positive")
	}
	if c.LowAccuracy >= c.HighAccuracy || c.LowAccuracy < 0 || c.HighAccuracy > 1 {
		return fmt.Errorf("fdp: need 0 ≤ low < high ≤ 1, got %v/%v", c.LowAccuracy, c.HighAccuracy)
	}
	if c.MinDegree < 1 || c.MaxDegree < c.MinDegree {
		return fmt.Errorf("fdp: need 1 ≤ min ≤ max degree, got %d/%d", c.MinDegree, c.MaxDegree)
	}
	return nil
}

// Stats exposes the throttle's behaviour.
type Stats struct {
	Epochs    uint64
	Raised    uint64
	Lowered   uint64
	Truncated uint64 // predictions dropped by the degree cap
}

// FDP wraps an inner prefetcher with accuracy-feedback throttling. It
// implements both prefetch.Prefetcher and the cache outcome observer.
type FDP struct {
	//ckpt:skip construction parameter, re-supplied by New; LoadState validates against it
	cfg Config
	//conc:core-local wraps the same core's inner prefetcher; nothing else holds it
	inner  prefetch.Prefetcher
	degree int

	useful uint64
	total  uint64
	stats  Stats
}

// New wraps inner with the given throttle configuration.
func New(cfg Config, inner prefetch.Prefetcher) (*FDP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, fmt.Errorf("fdp: inner prefetcher must not be nil")
	}
	return &FDP{cfg: cfg, inner: inner, degree: cfg.MaxDegree}, nil
}

// MustNew panics on configuration error.
func MustNew(cfg Config, inner prefetch.Prefetcher) *FDP {
	f, err := New(cfg, inner)
	if err != nil {
		panic(err)
	}
	return f
}

// Factory wraps each instance produced by the inner factory.
func Factory(cfg Config, inner prefetch.Factory) prefetch.Factory {
	return func(core int) prefetch.Prefetcher { return MustNew(cfg, inner(core)) }
}

// Name implements prefetch.Prefetcher.
func (f *FDP) Name() string { return "fdp(" + f.inner.Name() + ")" }

// Degree returns the current per-access issue cap.
func (f *FDP) Degree() int { return f.degree }

// Stats returns a snapshot of the throttle counters.
func (f *FDP) Stats() Stats { return f.stats }

// OnAccess implements prefetch.Prefetcher: the inner prediction list is
// truncated to the current degree cap.
func (f *FDP) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	addrs := f.inner.OnAccess(ev)
	if len(addrs) > f.degree {
		f.stats.Truncated += uint64(len(addrs) - f.degree)
		addrs = addrs[:f.degree]
	}
	return addrs
}

// OnEviction implements prefetch.Prefetcher.
func (f *FDP) OnEviction(addr mem.Addr) { f.inner.OnEviction(addr) }

// StorageBytes implements prefetch.Prefetcher: the wrapper costs two
// counters and a degree register.
func (f *FDP) StorageBytes() int { return f.inner.StorageBytes() + 8 }

// OnPrefetchOutcome receives the fate of one prefetched line from the
// cache and, at epoch boundaries, adjusts the degree cap.
func (f *FDP) OnPrefetchOutcome(useful bool) {
	f.total++
	if useful {
		f.useful++
	}
	if f.total < f.cfg.EpochOutcomes {
		return
	}
	acc := float64(f.useful) / float64(f.total)
	switch {
	case acc >= f.cfg.HighAccuracy && f.degree < f.cfg.MaxDegree:
		f.degree *= 2
		if f.degree > f.cfg.MaxDegree {
			f.degree = f.cfg.MaxDegree
		}
		f.stats.Raised++
	case acc < f.cfg.LowAccuracy && f.degree > f.cfg.MinDegree:
		f.degree /= 2
		if f.degree < f.cfg.MinDegree {
			f.degree = f.cfg.MinDegree
		}
		f.stats.Lowered++
	}
	f.stats.Epochs++
	// Halve the counters instead of clearing: an exponential moving
	// window that keeps some history across epochs.
	f.useful /= 2
	f.total /= 2
}

var _ prefetch.Prefetcher = (*FDP)(nil)
var _ prefetch.OutcomeObserver = (*FDP)(nil)
