package fdp

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// burstInner always predicts a fixed burst of n blocks.
type burstInner struct {
	n         int
	evictions int
}

func (b *burstInner) Name() string { return "burst" }

func (b *burstInner) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	out := make([]mem.Addr, b.n)
	block := ev.Addr.BlockNumber()
	for i := range out {
		out[i] = mem.Addr((block + uint64(i) + 1) << mem.BlockShift)
	}
	return out
}

func (b *burstInner) OnEviction(mem.Addr) { b.evictions++ }

func (b *burstInner) StorageBytes() int { return 100 }

func feed(f *FDP, n int, useful bool) {
	for i := 0; i < n; i++ {
		f.OnPrefetchOutcome(useful)
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.EpochOutcomes = 0 },
		func(c *Config) { c.LowAccuracy = 0.95 },
		func(c *Config) { c.HighAccuracy = 1.5 },
		func(c *Config) { c.MinDegree = 0 },
		func(c *Config) { c.MaxDegree = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg, &burstInner{n: 4}); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil inner should fail")
	}
}

func TestStartsAtMaxDegree(t *testing.T) {
	f := MustNew(DefaultConfig(), &burstInner{n: 64})
	if f.Degree() != DefaultConfig().MaxDegree {
		t.Fatalf("initial degree = %d", f.Degree())
	}
	got := f.OnAccess(prefetch.AccessEvent{Addr: 0x1000})
	if len(got) != DefaultConfig().MaxDegree {
		t.Fatalf("issued %d, want the max-degree cap", len(got))
	}
	if f.Stats().Truncated == 0 {
		t.Fatal("truncation should be counted")
	}
}

func TestThrottlesDownOnBadAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpochOutcomes = 16
	f := MustNew(cfg, &burstInner{n: 64})
	start := f.Degree()
	feed(f, 64, false) // several epochs of pure junk
	if f.Degree() >= start {
		t.Fatalf("degree did not drop: %d", f.Degree())
	}
	if f.Stats().Lowered == 0 {
		t.Fatal("lowering should be counted")
	}
}

func TestRecoversOnGoodAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpochOutcomes = 16
	f := MustNew(cfg, &burstInner{n: 64})
	feed(f, 256, false)
	low := f.Degree()
	if low != cfg.MinDegree {
		t.Fatalf("sustained junk should floor the degree, got %d", low)
	}
	feed(f, 512, true)
	if f.Degree() <= low {
		t.Fatalf("degree did not recover: %d", f.Degree())
	}
	if f.Stats().Raised == 0 {
		t.Fatal("raising should be counted")
	}
}

func TestDegreeBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpochOutcomes = 8
	f := MustNew(cfg, &burstInner{n: 64})
	feed(f, 10_000, false)
	if f.Degree() < cfg.MinDegree {
		t.Fatalf("degree under floor: %d", f.Degree())
	}
	feed(f, 10_000, true)
	if f.Degree() > cfg.MaxDegree {
		t.Fatalf("degree over ceiling: %d", f.Degree())
	}
}

func TestDelegation(t *testing.T) {
	inner := &burstInner{n: 2}
	f := MustNew(DefaultConfig(), inner)
	if f.Name() != "fdp(burst)" {
		t.Fatalf("name = %q", f.Name())
	}
	if f.StorageBytes() != 108 {
		t.Fatalf("storage = %d", f.StorageBytes())
	}
	f.OnEviction(0x40)
	if inner.evictions != 1 {
		t.Fatal("eviction not delegated")
	}
	if got := f.OnAccess(prefetch.AccessEvent{Addr: 0}); len(got) != 2 {
		t.Fatalf("under-cap prediction should pass through, got %d", len(got))
	}
}
