package ghb

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func access(pc mem.PC, block uint64) prefetch.AccessEvent {
	return prefetch.AccessEvent{PC: pc, Addr: mem.Addr(block << mem.BlockShift)}
}

func TestLearnsRepeatingDeltaSequence(t *testing.T) {
	g := MustNew(DefaultConfig())
	// Periodic deltas +1,+2,+3 from one PC: after two periods the context
	// (latest two deltas) matches history and the next deltas follow.
	block := uint64(1000)
	deltas := []uint64{1, 2, 3}
	var got []mem.Addr
	for i := 0; i < 12; i++ {
		got = g.OnAccess(access(0x400, block))
		block += deltas[i%3]
	}
	if len(got) == 0 {
		t.Fatal("periodic pattern should be predicted")
	}
	// After the access pattern ... +3 (i=11 done: last deltas observed
	// are from i=10,11). The prediction must walk the future deltas.
	// Verify at least the first prediction continues the period.
	want := mem.Addr((block) << mem.BlockShift) // next address in the period
	found := false
	for _, a := range got {
		if a == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("prediction %v should include the period's next block %v", got, want)
	}
}

func TestStrideStream(t *testing.T) {
	g := MustNew(DefaultConfig())
	var got []mem.Addr
	for i := uint64(0); i < 10; i++ {
		got = g.OnAccess(access(0x400, 100+i*7))
	}
	if len(got) == 0 {
		t.Fatal("constant stride should be predicted")
	}
	if got[0] != mem.Addr((100+10*7)<<mem.BlockShift) {
		t.Fatalf("first prediction = %v, want the next stride point", got[0])
	}
	if len(got) > DefaultConfig().Degree {
		t.Fatalf("degree exceeded: %d", len(got))
	}
}

func TestNoPredictionWithoutContext(t *testing.T) {
	g := MustNew(DefaultConfig())
	if got := g.OnAccess(access(0x400, 10)); got != nil {
		t.Fatal("one access cannot predict")
	}
	if got := g.OnAccess(access(0x400, 20)); got != nil {
		t.Fatal("two accesses cannot predict")
	}
}

func TestPerPCChains(t *testing.T) {
	g := MustNew(DefaultConfig())
	// Interleave two PCs with different strides; each must be predicted
	// from its own chain.
	// OnAccess results are valid only until the next call, so keep copies.
	var gotA, gotB []mem.Addr
	for i := uint64(0); i < 10; i++ {
		gotA = append(gotA[:0], g.OnAccess(access(0x400, 1000+i*2))...)
		gotB = append(gotB[:0], g.OnAccess(access(0x500, 50000+i*5))...)
	}
	if len(gotA) == 0 || len(gotB) == 0 {
		t.Fatal("both PCs should predict")
	}
	if gotA[0] != mem.Addr((1000+10*2)<<mem.BlockShift) {
		t.Fatalf("PC A prediction = %v", gotA[0])
	}
	if gotB[0] != mem.Addr((50000+10*5)<<mem.BlockShift) {
		t.Fatalf("PC B prediction = %v", gotB[0])
	}
}

func TestFIFOAgesHistory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferEntries = 16
	g := MustNew(cfg)
	for i := uint64(0); i < 8; i++ {
		g.OnAccess(access(0x400, 100+i*3))
	}
	// Flood the buffer with another PC: the first chain ages out.
	for i := uint64(0); i < 32; i++ {
		g.OnAccess(access(0x500, 9000+i))
	}
	if got := g.OnAccess(access(0x400, 200)); got != nil {
		t.Fatalf("aged-out chain should not predict, got %v", got)
	}
}

func TestRandomTrafficSilent(t *testing.T) {
	g := MustNew(DefaultConfig())
	blk := uint64(1)
	issued := 0
	for i := 0; i < 5000; i++ {
		blk = blk*6364136223846793005 + 1442695040888963407
		if got := g.OnAccess(access(0x400, blk%(1<<30))); got != nil {
			issued += len(got)
		}
	}
	if issued > 200 {
		t.Fatalf("random traffic should rarely match contexts, issued %d", issued)
	}
}

func TestIdentity(t *testing.T) {
	g := MustNew(DefaultConfig())
	if g.Name() != "ghb-pcdc" || g.StorageBytes() <= 0 {
		t.Fatal("identity wrong")
	}
	g.OnEviction(0x1000)
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IndexEntries = 7
	if _, err := New(cfg); err == nil {
		t.Fatal("bad index geometry should fail")
	}
}
