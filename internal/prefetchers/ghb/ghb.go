// Package ghb implements the Global History Buffer PC/DC prefetcher
// (Nesbit & Smith, HPCA'04, the paper's reference [66]): a FIFO of recent
// accesses threaded into per-PC linked chains, from which delta
// correlation is computed on the fly. On each access the two most recent
// deltas of the PC's chain form a context; the chain is searched backwards
// for the same context and the deltas that followed it historically are
// prefetched. Unlike table-based delta prefetchers, the GHB keeps complete
// (if short) history and ages it naturally through FIFO replacement.
package ghb

import (
	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// Config parameterises a GHB PC/DC instance.
type Config struct {
	BufferEntries int // global history buffer size (FIFO)
	IndexEntries  int // PC index table entries
	IndexWays     int
	Degree        int // deltas prefetched per match
}

// DefaultConfig is the classic 256-entry GHB with a 256-entry index.
func DefaultConfig() Config {
	return Config{BufferEntries: 256, IndexEntries: 256, IndexWays: 4, Degree: 4}
}

type ghbEntry struct {
	block uint64
	prev  int64 // absolute index of the previous entry with the same PC, -1 if none
}

// GHB is the PC/DC prefetcher.
type GHB struct {
	//ckpt:skip construction parameter, re-supplied by New; LoadState validates the buffer size
	cfg  Config
	buf  []ghbEntry
	head int64 // total entries ever pushed; buf index = head % len
	//conc:core-local each core owns its GHB instance and its index table
	index *prefetch.Table[int64] // PC -> absolute index of newest entry

	// addrBuf backs the slice OnAccess returns; reused across calls so
	// the per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr
	// chainBuf and deltaBuf are reusable scratch for the delta search.
	//ckpt:skip scratch buffer, contents dead between calls
	chainBuf []uint64
	//ckpt:skip scratch buffer, contents dead between calls
	deltaBuf []int64
}

// New builds a GHB instance.
func New(cfg Config) (*GHB, error) {
	idx, err := prefetch.NewTable[int64](cfg.IndexEntries, cfg.IndexWays)
	if err != nil {
		return nil, err
	}
	if cfg.BufferEntries <= 0 {
		cfg.BufferEntries = DefaultConfig().BufferEntries
	}
	if cfg.Degree <= 0 {
		cfg.Degree = DefaultConfig().Degree
	}
	return &GHB{cfg: cfg, buf: make([]ghbEntry, cfg.BufferEntries), index: idx}, nil
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *GHB {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Factory returns a per-core factory.
func Factory(cfg Config) prefetch.Factory {
	return func(int) prefetch.Prefetcher { return MustNew(cfg) }
}

// Name implements prefetch.Prefetcher.
func (g *GHB) Name() string { return "ghb-pcdc" }

// live reports whether absolute index abs is still inside the FIFO window.
func (g *GHB) live(abs int64) bool {
	return abs >= 0 && abs > g.head-int64(len(g.buf)) && abs < g.head
}

func (g *GHB) at(abs int64) *ghbEntry { return &g.buf[abs%int64(len(g.buf))] }

// chain collects the block numbers of the PC's chain, newest first, up to
// max entries.
func (g *GHB) chain(newest int64, max int) []uint64 {
	out := g.chainBuf[:0]
	for abs := newest; g.live(abs) && len(out) < max; {
		e := g.at(abs)
		out = append(out, e.block) //hot:alloc reused buffer grows to steady-state capacity
		abs = e.prev
	}
	g.chainBuf = out
	return out
}

// OnAccess implements prefetch.Prefetcher.
func (g *GHB) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	block := ev.Addr.BlockNumber()
	pc := uint64(ev.PC)

	prev := int64(-1)
	if p, ok := g.index.Lookup(pc, true); ok && g.live(*p) {
		prev = *p
	}
	abs := g.head
	*g.at(abs) = ghbEntry{block: block, prev: prev}
	g.head++
	g.index.Insert(pc, abs)

	// Delta correlation over the chain (newest first).
	blocks := g.chain(abs, 64)
	if len(blocks) < 4 {
		return nil
	}
	deltas := g.deltaBuf[:0] // deltas[i] = blocks[i] - blocks[i+1]
	for i := 0; i+1 < len(blocks); i++ {
		deltas = append(deltas, int64(blocks[i])-int64(blocks[i+1])) //hot:alloc reused buffer grows to steady-state capacity
	}
	g.deltaBuf = deltas
	d1, d2 := deltas[0], deltas[1]
	// Search older history for the same (newer=d1, older=d2) context.
	for i := 2; i+1 < len(deltas); i++ {
		if deltas[i] != d1 || deltas[i+1] != d2 {
			continue
		}
		// Found: the deltas that followed the historical context are
		// deltas[i-1], deltas[i-2], ... (toward the present).
		out := g.addrBuf[:0]
		cur := int64(block)
		for j := i - 1; j >= 0 && len(out) < g.cfg.Degree; j-- {
			cur += deltas[j]
			if cur <= 0 {
				break
			}
			out = append(out, mem.Addr(uint64(cur)<<mem.BlockShift)) //hot:alloc reused buffer grows to steady-state capacity
		}
		g.addrBuf = out
		return out
	}
	return nil
}

// OnEviction implements prefetch.Prefetcher.
func (g *GHB) OnEviction(mem.Addr) {}

// StorageBytes implements prefetch.Prefetcher.
func (g *GHB) StorageBytes() int {
	bufBits := len(g.buf) * (26 + 9) // block address + link
	idxBits := g.index.Capacity() * (1 + 4 + 16 + 9)
	return (bufBits + idxBits) / 8
}

var _ prefetch.Prefetcher = (*GHB)(nil)
