package ghb

import (
	"fmt"

	"bingo/internal/checkpoint"
)

// encodeLinks is the value codec for the PC index table.
func encodeLinks(w *checkpoint.Writer, vals []int64) {
	w.I64s(vals)
}

// decodeLinks mirrors encodeLinks.
func decodeLinks(r *checkpoint.Reader) []int64 {
	return r.I64s()
}

// SaveState implements checkpoint.Checkpointable: the FIFO cursor, the
// buffer contents (block numbers and chain links), and the PC index.
func (g *GHB) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	w.I64(g.head)
	blocks := make([]uint64, len(g.buf))
	prevs := make([]int64, len(g.buf))
	for i, e := range g.buf {
		blocks[i] = e.block
		prevs[i] = e.prev
	}
	w.U64s(blocks)
	w.I64s(prevs)
	return g.index.SaveState(w, encodeLinks)
}

// LoadState implements checkpoint.Checkpointable.
func (g *GHB) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	head := r.I64()
	blocks := r.U64s()
	prevs := r.I64s()
	if err := r.Err(); err != nil {
		return err
	}
	if head < 0 {
		return fmt.Errorf("ghb: snapshot FIFO cursor %d negative", head)
	}
	if len(blocks) != len(g.buf) || len(prevs) != len(g.buf) {
		return fmt.Errorf("ghb: snapshot buffer holds %d entries, buffer has %d", len(blocks), len(g.buf))
	}
	// Chain links point strictly backwards in push order (or -1); anything
	// else would make chain walks read entries that were never written.
	for i, p := range prevs {
		if p < -1 || p >= head {
			return fmt.Errorf("ghb: snapshot chain link %d at slot %d outside pushed history [0,%d)", p, i, head)
		}
	}
	if err := g.index.LoadState(r, decodeLinks); err != nil {
		return fmt.Errorf("ghb index: %w", err)
	}
	bad := int64(-2)
	g.index.Range(func(key uint64, v *int64) bool {
		if *v < 0 || *v >= head {
			bad = *v
			return false
		}
		return true
	})
	if bad != -2 {
		return fmt.Errorf("ghb: snapshot index points at entry %d outside pushed history [0,%d)", bad, head)
	}
	g.head = head
	for i := range g.buf {
		g.buf[i] = ghbEntry{block: blocks[i], prev: prevs[i]}
	}
	return nil
}
