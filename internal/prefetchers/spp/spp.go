// Package spp implements the Signature Path Prefetcher (Kim et al.,
// MICRO'16): per-page delta histories compressed into 12-bit signatures, a
// pattern table mapping signatures to candidate deltas with confidence
// counters, and speculative lookahead down the signature path for as long
// as the compounded path confidence stays above a threshold. A prefetch
// filter suppresses duplicates. The confidence threshold is the knob the
// paper's ISO-degree experiment turns (25 % default, 1 % aggressive).
package spp

import (
	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

const (
	sigBits  = 12
	sigMask  = (1 << sigBits) - 1
	sigShift = 3
	deltaLow = 0x3f // deltas folded to 7 bits (sign + 6 magnitude)
)

// Config parameterises an SPP instance.
type Config struct {
	PageBytes        uint64
	SignatureEntries int // signature (per-page) table, 256 in the paper
	SignatureWays    int
	PatternEntries   int // pattern table, 512 in the paper
	DeltasPerEntry   int // candidate deltas tracked per signature (4)
	FilterEntries    int // prefetch filter, 1024 in the paper
	Threshold        float64
	MaxLookahead     int // safety bound on path depth
}

// DefaultConfig is the paper's evaluated configuration.
func DefaultConfig() Config {
	return Config{
		PageBytes:        4096,
		SignatureEntries: 256,
		SignatureWays:    8,
		PatternEntries:   512,
		DeltasPerEntry:   4,
		FilterEntries:    1024,
		Threshold:        0.25,
		MaxLookahead:     6,
	}
}

// AggressiveConfig is the ISO-degree variant (confidence threshold 1 %).
func AggressiveConfig() Config {
	c := DefaultConfig()
	c.Threshold = 0.01
	c.MaxLookahead = 64
	return c
}

type stEntry struct {
	lastOffset int
	sig        uint16
}

type deltaSlot struct {
	delta int
	count uint32
}

type ptEntry struct {
	csig   uint32
	deltas []deltaSlot
}

// SPP is the signature-path prefetcher.
type SPP struct {
	//ckpt:skip construction parameter, re-supplied by New; LoadState validates against it
	cfg Config
	//ckpt:skip derived from cfg.PageBytes in New; LoadState validates against it
	rc mem.RegionConfig
	//conc:core-local each core owns its SPP instance and its signature table
	sigs    *prefetch.Table[stEntry]
	pattern []ptEntry
	//ckpt:skip derived geometry, recomputed from cfg in New
	ptMask uint32
	filter []uint64
	//ckpt:skip derived geometry, recomputed from cfg in New
	fMask uint64

	// addrBuf backs the slice OnAccess returns; reused across calls so
	// the per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr
}

// New builds an SPP instance.
func New(cfg Config) (*SPP, error) {
	rc, err := mem.NewRegionConfig(cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	sigs, err := prefetch.NewTable[stEntry](cfg.SignatureEntries, cfg.SignatureWays)
	if err != nil {
		return nil, err
	}
	if !mem.IsPow2(cfg.PatternEntries) {
		cfg.PatternEntries = DefaultConfig().PatternEntries
	}
	if !mem.IsPow2(cfg.FilterEntries) {
		cfg.FilterEntries = DefaultConfig().FilterEntries
	}
	s := &SPP{
		cfg:     cfg,
		rc:      rc,
		sigs:    sigs,
		pattern: make([]ptEntry, cfg.PatternEntries),
		ptMask:  uint32(cfg.PatternEntries - 1),
		filter:  make([]uint64, cfg.FilterEntries),
		fMask:   uint64(cfg.FilterEntries - 1),
	}
	return s, nil
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *SPP {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Factory returns a per-core factory.
func Factory(cfg Config) prefetch.Factory {
	return func(int) prefetch.Prefetcher { return MustNew(cfg) }
}

// Name implements prefetch.Prefetcher.
func (s *SPP) Name() string {
	if s.cfg.Threshold < 0.25 {
		return "spp-aggr"
	}
	return "spp"
}

func updateSig(sig uint16, delta int) uint16 {
	return uint16((uint(sig)<<sigShift ^ uint(delta&deltaLow)) & sigMask)
}

func (s *SPP) pt(sig uint16) *ptEntry { return &s.pattern[uint32(sig)&s.ptMask] }

// train records that delta followed signature sig.
func (s *SPP) train(sig uint16, delta int) {
	e := s.pt(sig)
	e.csig++
	for i := range e.deltas {
		if e.deltas[i].delta == delta {
			e.deltas[i].count++
			return
		}
	}
	if len(e.deltas) < s.cfg.DeltasPerEntry {
		e.deltas = append(e.deltas, deltaSlot{delta: delta, count: 1}) //hot:alloc reused buffer grows to steady-state capacity
		return
	}
	// Replace the weakest candidate.
	weak := 0
	for i := range e.deltas {
		if e.deltas[i].count < e.deltas[weak].count {
			weak = i
		}
	}
	e.deltas[weak] = deltaSlot{delta: delta, count: 1}
}

// best returns the highest-confidence delta of sig and its probability.
func (s *SPP) best(sig uint16) (delta int, prob float64, ok bool) {
	e := s.pt(sig)
	if e.csig == 0 || len(e.deltas) == 0 {
		return 0, 0, false
	}
	bi := 0
	for i := range e.deltas {
		if e.deltas[i].count > e.deltas[bi].count {
			bi = i
		}
	}
	return e.deltas[bi].delta, float64(e.deltas[bi].count) / float64(e.csig), true
}

func (s *SPP) filtered(block uint64) bool {
	slot := &s.filter[mem.Mix64(block)&s.fMask]
	if *slot == block {
		return true
	}
	*slot = block
	return false
}

// OnAccess implements prefetch.Prefetcher.
func (s *SPP) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	page := s.rc.RegionNumber(ev.Addr)
	offset := s.rc.BlockIndex(ev.Addr)

	entry, ok := s.sigs.Lookup(page, true)
	if !ok {
		s.sigs.Insert(page, stEntry{lastOffset: offset})
		return nil
	}
	delta := offset - entry.lastOffset
	if delta == 0 {
		return nil
	}
	s.train(entry.sig, delta)
	entry.sig = updateSig(entry.sig, delta)
	entry.lastOffset = offset

	// Lookahead down the signature path.
	out := s.addrBuf[:0]
	sig := entry.sig
	off := offset
	conf := 1.0
	base := s.rc.RegionBase(ev.Addr)
	for depth := 0; depth < s.cfg.MaxLookahead; depth++ {
		d, p, ok := s.best(sig)
		if !ok {
			break
		}
		conf *= p
		if conf < s.cfg.Threshold {
			break
		}
		off += d
		if off < 0 || off >= s.rc.Blocks() {
			break // SPP's GHR page-crossing is out of scope here
		}
		addr := s.rc.BlockAddr(base, off)
		if !s.filtered(addr.BlockNumber()) {
			out = append(out, addr) //hot:alloc reused buffer grows to steady-state capacity
		}
		sig = updateSig(sig, d)
	}
	s.addrBuf = out
	return out
}

// OnEviction implements prefetch.Prefetcher.
func (s *SPP) OnEviction(mem.Addr) {}

// StorageBytes implements prefetch.Prefetcher.
func (s *SPP) StorageBytes() int {
	stBits := s.sigs.Capacity() * (1 + 4 + 16 + 6 + sigBits)
	ptBits := len(s.pattern) * (8 + s.cfg.DeltasPerEntry*(7+8))
	fBits := len(s.filter) * 12
	return (stBits + ptBits + fBits) / 8
}

var _ prefetch.Prefetcher = (*SPP)(nil)
