package spp

import (
	"fmt"

	"bingo/internal/checkpoint"
)

// encodeSTEntries is the value codec for the signature table.
func encodeSTEntries(w *checkpoint.Writer, vals []stEntry) {
	lastOffsets := make([]int, len(vals))
	sigs := make([]uint64, len(vals))
	for i, v := range vals {
		lastOffsets[i] = v.lastOffset
		sigs[i] = uint64(v.sig)
	}
	w.Ints(lastOffsets)
	w.U64s(sigs)
}

// decodeSTEntries mirrors encodeSTEntries.
func decodeSTEntries(r *checkpoint.Reader) []stEntry {
	lastOffsets := r.Ints()
	sigs := r.U64s()
	if r.Err() != nil || len(sigs) != len(lastOffsets) {
		return nil
	}
	out := make([]stEntry, len(lastOffsets))
	for i := range out {
		out[i] = stEntry{lastOffset: lastOffsets[i], sig: uint16(sigs[i])}
	}
	return out
}

// SaveState implements checkpoint.Checkpointable. The pattern table is a
// plain array of entries with variable-length delta lists, serialised
// flattened: per-entry counted signatures, per-entry list lengths, then
// the concatenated delta/count columns.
func (s *SPP) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	if err := s.sigs.SaveState(w, encodeSTEntries); err != nil {
		return err
	}
	csigs := make([]uint64, len(s.pattern))
	lens := make([]int, len(s.pattern))
	var deltas []int
	var counts []uint64
	for i := range s.pattern {
		e := &s.pattern[i]
		csigs[i] = uint64(e.csig)
		lens[i] = len(e.deltas)
		for _, d := range e.deltas {
			deltas = append(deltas, d.delta)
			counts = append(counts, uint64(d.count))
		}
	}
	w.U64s(csigs)
	w.Ints(lens)
	w.Ints(deltas)
	w.U64s(counts)
	w.U64s(s.filter)
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable.
func (s *SPP) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	if err := s.sigs.LoadState(r, decodeSTEntries); err != nil {
		return fmt.Errorf("spp signature table: %w", err)
	}
	csigs := r.U64s()
	lens := r.Ints()
	deltas := r.Ints()
	counts := r.U64s()
	filter := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(csigs) != len(s.pattern) || len(lens) != len(s.pattern) {
		return fmt.Errorf("spp: snapshot pattern table holds %d entries, table has %d", len(csigs), len(s.pattern))
	}
	if len(counts) != len(deltas) {
		return fmt.Errorf("spp: snapshot delta/count columns disagree (%d vs %d)", len(deltas), len(counts))
	}
	total := 0
	for i, n := range lens {
		if n < 0 || n > s.cfg.DeltasPerEntry {
			return fmt.Errorf("spp: snapshot pattern entry %d holds %d deltas, limit %d", i, n, s.cfg.DeltasPerEntry)
		}
		if csigs[i] > 1<<32-1 {
			return fmt.Errorf("spp: snapshot pattern entry %d counted signature %d overflows", i, csigs[i])
		}
		total += n
	}
	for i, c := range counts {
		if c > 1<<32-1 {
			return fmt.Errorf("spp: snapshot delta count %d at slot %d overflows", c, i)
		}
	}
	if total != len(deltas) {
		return fmt.Errorf("spp: snapshot delta column holds %d entries, lengths sum to %d", len(deltas), total)
	}
	if len(filter) != len(s.filter) {
		return fmt.Errorf("spp: snapshot filter holds %d entries, filter has %d", len(filter), len(s.filter))
	}
	blocks := s.rc.Blocks()
	bad := false
	s.sigs.Range(func(key uint64, v *stEntry) bool {
		bad = v.lastOffset < 0 || v.lastOffset >= blocks || v.sig > sigMask
		return !bad
	})
	if bad {
		return fmt.Errorf("spp: snapshot signature entry outside page geometry")
	}
	off := 0
	for i := range s.pattern {
		e := &s.pattern[i]
		e.csig = uint32(csigs[i])
		e.deltas = e.deltas[:0]
		for j := 0; j < lens[i]; j++ {
			e.deltas = append(e.deltas, deltaSlot{delta: deltas[off], count: uint32(counts[off])})
			off++
		}
	}
	copy(s.filter, filter)
	return nil
}
