package spp

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func access(a mem.Addr) prefetch.AccessEvent { return prefetch.AccessEvent{PC: 1, Addr: a} }

func pageAddr(page uint64, block int) mem.Addr {
	return mem.Addr(page*4096 + uint64(block)*64)
}

func TestLearnsUnitStride(t *testing.T) {
	s := MustNew(DefaultConfig())
	// Train a unit-delta pattern across several pages.
	for p := uint64(0); p < 8; p++ {
		for b := 0; b < 10; b++ {
			s.OnAccess(access(pageAddr(p, b)))
		}
	}
	// Fresh page: after two accesses establishing delta 1, lookahead
	// should prefetch ahead.
	s.OnAccess(access(pageAddr(100, 0)))
	got := s.OnAccess(access(pageAddr(100, 1)))
	if len(got) == 0 {
		t.Fatal("trained SPP should prefetch on a recognised delta")
	}
	for i, a := range got {
		if want := pageAddr(100, 2+i); a != want {
			t.Fatalf("prefetch[%d] = %v, want %v", i, a, want)
		}
	}
}

func TestLookaheadBoundedByConfidence(t *testing.T) {
	// A deterministic stream keeps path confidence at 1.0, so only
	// MaxLookahead bounds it; a *mixed* delta pattern (half +1, half +2
	// after the same signature) halves the confidence per step and a 90%
	// threshold must then prune the path immediately.
	cfg := DefaultConfig()
	cfg.Threshold = 0.9
	s := MustNew(cfg)
	for p := uint64(0); p < 16; p++ {
		d := 1 + int(p%2)
		s.OnAccess(access(pageAddr(p, 0)))
		s.OnAccess(access(pageAddr(p, d)))
	}
	s.OnAccess(access(pageAddr(100, 0)))
	got := s.OnAccess(access(pageAddr(100, 1)))
	if len(got) != 0 {
		t.Fatalf("≈50%% confident delta must not pass a 90%% threshold, got %v", got)
	}
}

func TestLookaheadBoundedByMaxDepth(t *testing.T) {
	cfg := DefaultConfig()
	s := MustNew(cfg)
	for p := uint64(0); p < 8; p++ {
		for b := 0; b < 30; b++ {
			s.OnAccess(access(pageAddr(p, b)))
		}
	}
	s.OnAccess(access(pageAddr(100, 0)))
	got := s.OnAccess(access(pageAddr(100, 1)))
	if len(got) > cfg.MaxLookahead {
		t.Fatalf("lookahead %d exceeded MaxLookahead %d", len(got), cfg.MaxLookahead)
	}
}

func TestAggressiveDeeper(t *testing.T) {
	train := func(s *SPP) int {
		for p := uint64(0); p < 8; p++ {
			for b := 0; b < 30; b++ {
				s.OnAccess(access(pageAddr(p, b)))
			}
		}
		s.OnAccess(access(pageAddr(100, 0)))
		return len(s.OnAccess(access(pageAddr(100, 1))))
	}
	normal := train(MustNew(DefaultConfig()))
	aggressive := train(MustNew(AggressiveConfig()))
	if aggressive <= normal {
		t.Fatalf("aggressive (%d) should look further than default (%d)", aggressive, normal)
	}
}

func TestFilterSuppressesDuplicates(t *testing.T) {
	s := MustNew(DefaultConfig())
	for p := uint64(0); p < 8; p++ {
		for b := 0; b < 10; b++ {
			s.OnAccess(access(pageAddr(p, b)))
		}
	}
	s.OnAccess(access(pageAddr(100, 0)))
	first := s.OnAccess(access(pageAddr(100, 1)))
	// Revisiting the same position must not re-issue the same blocks.
	s.OnAccess(access(pageAddr(100, 0)))
	second := s.OnAccess(access(pageAddr(100, 1)))
	if len(second) >= len(first) && len(first) > 0 {
		t.Fatalf("filter should suppress duplicates: first=%d second=%d", len(first), len(second))
	}
}

func TestPageBoundaryStopsLookahead(t *testing.T) {
	s := MustNew(DefaultConfig())
	for p := uint64(0); p < 8; p++ {
		for b := 0; b < 64; b++ {
			s.OnAccess(access(pageAddr(p, b)))
		}
	}
	s.OnAccess(access(pageAddr(100, 62)))
	got := s.OnAccess(access(pageAddr(100, 63)))
	for _, a := range got {
		if a >= pageAddr(101, 0) {
			t.Fatalf("prefetch %v crossed the page", a)
		}
	}
}

func TestSignatureUpdate(t *testing.T) {
	s0 := updateSig(0, 1)
	s1 := updateSig(s0, 1)
	if s0 == 0 || s1 == s0 {
		t.Fatalf("signature should evolve: %x %x", s0, s1)
	}
	if updateSig(0, 1) != s0 {
		t.Fatal("signature update must be deterministic")
	}
	if s := updateSig(0xfff, 5); s&^sigMask != 0 {
		t.Fatalf("signature exceeded %d bits: %x", sigBits, s)
	}
}

func TestSameBlockNoDelta(t *testing.T) {
	s := MustNew(DefaultConfig())
	s.OnAccess(access(pageAddr(5, 3)))
	if got := s.OnAccess(access(pageAddr(5, 3))); got != nil {
		t.Fatalf("zero delta should not prefetch: %v", got)
	}
}

func TestIdentity(t *testing.T) {
	s := MustNew(DefaultConfig())
	if s.Name() != "spp" || s.StorageBytes() <= 0 {
		t.Fatal("identity wrong")
	}
	if MustNew(AggressiveConfig()).Name() != "spp-aggr" {
		t.Fatal("aggressive name wrong")
	}
	s.OnEviction(0x1000) // no-op
}
