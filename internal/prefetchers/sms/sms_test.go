package sms

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.FilterEntries = 16
	cfg.AccumEntries = 32
	cfg.TrackerWays = 4
	cfg.HistoryEntries = 256
	cfg.HistoryWays = 4
	return cfg
}

func addr(region uint64, block int) mem.Addr {
	return mem.Addr(region*2048 + uint64(block)*64)
}

func access(pc mem.PC, a mem.Addr) prefetch.AccessEvent {
	return prefetch.AccessEvent{PC: pc, Addr: a}
}

func train(s *SMS, pc mem.PC, region uint64, blocks []int) {
	for i, blk := range blocks {
		p := pc
		if i > 0 {
			p += mem.PC(i)
		}
		s.OnAccess(access(p, addr(region, blk)))
	}
	s.OnEviction(addr(region, blocks[0]))
}

func TestLearnAndGeneralise(t *testing.T) {
	s := MustNew(smallConfig())
	train(s, 0x400, 7, []int{2, 5, 9})

	// SMS keys on PC+Offset only: a brand-new region with the same
	// trigger PC and offset gets the learned footprint.
	got := s.OnAccess(access(0x400, addr(300, 2)))
	if len(got) != 2 {
		t.Fatalf("prefetches = %v", got)
	}
	want := map[mem.Addr]bool{addr(300, 5): true, addr(300, 9): true}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected prefetch %v", a)
		}
	}
	if s.Triggers != 2 || s.Matches != 1 {
		t.Fatalf("triggers=%d matches=%d", s.Triggers, s.Matches)
	}
}

func TestNoCrossPCGeneralisation(t *testing.T) {
	s := MustNew(smallConfig())
	train(s, 0x400, 7, []int{2, 5})
	if got := s.OnAccess(access(0x999, addr(300, 2))); got != nil {
		t.Fatalf("different trigger PC should not match, got %v", got)
	}
}

func TestLatestFootprintWins(t *testing.T) {
	// Unlike Bingo's voting, SMS keeps one footprint per PC+Offset key:
	// retraining replaces it.
	s := MustNew(smallConfig())
	train(s, 0x400, 7, []int{2, 5})
	train(s, 0x400, 8, []int{2, 9})
	got := s.OnAccess(access(0x400, addr(300, 2)))
	if len(got) != 1 || got[0] != addr(300, 9) {
		t.Fatalf("latest footprint should win, got %v", got)
	}
}

func TestMaxDegree(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxDegree = 1
	s := MustNew(cfg)
	train(s, 0x400, 7, []int{0, 3, 6, 9})
	if got := s.OnAccess(access(0x400, addr(300, 0))); len(got) != 1 {
		t.Fatalf("MaxDegree=1 but issued %d", len(got))
	}
}

func TestStorageAndName(t *testing.T) {
	s := MustNew(DefaultConfig())
	if s.Name() != "sms" {
		t.Fatal("name wrong")
	}
	kb := float64(s.StorageBytes()) / 1024
	if kb < 80 || kb > 160 {
		t.Fatalf("storage = %.1f KB, expected a 16K-entry-table budget", kb)
	}
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RegionBytes = 3000
	if _, err := New(cfg); err == nil {
		t.Fatal("bad region should fail")
	}
	cfg = DefaultConfig()
	cfg.HistoryEntries = 7
	if _, err := New(cfg); err == nil {
		t.Fatal("bad history geometry should fail")
	}
}

func TestFactoryIndependence(t *testing.T) {
	f := Factory(smallConfig())
	a := f(0).(*SMS)
	b := f(1).(*SMS)
	train(a, 0x400, 7, []int{2, 5})
	if got := b.OnAccess(access(0x400, addr(300, 2))); got != nil {
		t.Fatal("instances must not share metadata")
	}
}
