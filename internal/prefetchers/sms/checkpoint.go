package sms

import (
	"fmt"

	"bingo/internal/checkpoint"
	"bingo/internal/prefetch"
)

// encodePatternEntries is the value codec for the history table.
func encodePatternEntries(w *checkpoint.Writer, vals []patternEntry) {
	fps := make([]uint64, len(vals))
	for i, v := range vals {
		fps[i] = uint64(v.fp)
	}
	w.U64s(fps)
}

// decodePatternEntries mirrors encodePatternEntries.
func decodePatternEntries(r *checkpoint.Reader) []patternEntry {
	fps := r.U64s()
	if r.Err() != nil {
		return nil
	}
	out := make([]patternEntry, len(fps))
	for i := range out {
		out[i] = patternEntry{fp: prefetch.Footprint(fps[i])}
	}
	return out
}

// SaveState implements checkpoint.Checkpointable.
func (s *SMS) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	w.U64(s.Triggers)
	w.U64(s.Matches)
	if err := s.tracker.SaveState(w); err != nil {
		return err
	}
	return s.history.SaveState(w, encodePatternEntries)
}

// LoadState implements checkpoint.Checkpointable.
func (s *SMS) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	triggers := r.U64()
	matches := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if err := s.tracker.LoadState(r); err != nil {
		return fmt.Errorf("sms: %w", err)
	}
	if err := s.history.LoadState(r, decodePatternEntries); err != nil {
		return fmt.Errorf("sms: %w", err)
	}
	s.Triggers = triggers
	s.Matches = matches
	return nil
}
