// Package sms implements Spatial Memory Streaming (Somogyi et al.,
// ISCA'06), the strongest prior PPH prefetcher and the base of Bingo: page
// footprints recorded during region residency and associated with the
// single PC+Offset event of the trigger access. Its history table is the
// 16 K-entry 16-way structure the paper equips it with (§V-B).
package sms

import (
	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// Config parameterises an SMS instance.
type Config struct {
	RegionBytes    uint64
	FilterEntries  int
	AccumEntries   int
	TrackerWays    int
	HistoryEntries int
	HistoryWays    int
	MaxDegree      int // 0 = whole footprint
}

// DefaultConfig matches the paper's SMS configuration.
func DefaultConfig() Config {
	return Config{
		RegionBytes:    2048,
		FilterEntries:  64,
		AccumEntries:   128,
		TrackerWays:    16,
		HistoryEntries: 16 * 1024,
		HistoryWays:    16,
	}
}

type patternEntry struct {
	fp prefetch.Footprint // anchored at bit 0
}

// SMS is the PC+Offset-indexed spatial prefetcher.
type SMS struct {
	//ckpt:skip construction parameter, re-supplied by New before restore
	cfg Config
	//ckpt:skip derived from cfg.RegionBytes in New
	rc mem.RegionConfig
	//conc:core-local each core owns its SMS instance and its tables
	tracker *prefetch.RegionTracker
	//conc:core-local each core owns its SMS instance and its tables
	history *prefetch.Table[patternEntry]

	// Triggers and Matches expose match probability for analyses.
	Triggers uint64
	Matches  uint64

	// addrBuf backs the slice OnAccess returns; reused across calls so the
	// per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr
}

// New builds an SMS instance.
func New(cfg Config) (*SMS, error) {
	rc, err := mem.NewRegionConfig(cfg.RegionBytes)
	if err != nil {
		return nil, err
	}
	tracker, err := prefetch.NewRegionTracker(rc, cfg.FilterEntries, cfg.AccumEntries, cfg.TrackerWays)
	if err != nil {
		return nil, err
	}
	history, err := prefetch.NewTable[patternEntry](cfg.HistoryEntries, cfg.HistoryWays)
	if err != nil {
		return nil, err
	}
	s := &SMS{cfg: cfg, rc: rc, tracker: tracker, history: history}
	tracker.SetCompleteFunc(s.train)
	return s, nil
}

// train commits a completed residency's footprint under its PC+Offset key.
func (s *SMS) train(ar prefetch.ActiveRegion) {
	anchored := ar.Footprint.Rotate(ar.TriggerOffset, 0, s.rc.Blocks())
	key := prefetch.EventPCOffset.Key(ar.TriggerPC, ar.TriggerAddr, s.rc)
	s.history.Insert(key, patternEntry{fp: anchored})
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *SMS {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Factory returns a per-core factory.
func Factory(cfg Config) prefetch.Factory {
	return func(int) prefetch.Prefetcher { return MustNew(cfg) }
}

// Name implements prefetch.Prefetcher.
func (s *SMS) Name() string { return "sms" }

// OnAccess implements prefetch.Prefetcher.
func (s *SMS) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	trigger := s.tracker.Observe(ev.PC, ev.Addr, ev.Hit)
	if trigger == nil {
		return nil
	}
	s.Triggers++
	key := prefetch.EventPCOffset.Key(trigger.PC, trigger.Addr, s.rc)
	entry, ok := s.history.Lookup(key, true)
	if !ok {
		return nil
	}
	s.Matches++
	fp := entry.fp.Rotate(0, trigger.Offset, s.rc.Blocks())
	addrs := fp.AppendAddrs(s.addrBuf[:0], s.rc, trigger.Base, trigger.Offset)
	s.addrBuf = addrs
	if s.cfg.MaxDegree > 0 && len(addrs) > s.cfg.MaxDegree {
		addrs = addrs[:s.cfg.MaxDegree]
	}
	return addrs
}

// OnEviction implements prefetch.Prefetcher.
func (s *SMS) OnEviction(addr mem.Addr) {
	s.tracker.OnEviction(addr)
}

// StorageBytes implements prefetch.Prefetcher.
func (s *SMS) StorageBytes() int {
	per := 1 + 4 + prefetch.EventPCOffset.Bits(s.rc) + s.rc.Blocks()
	bits := s.history.Capacity()*per + s.tracker.StorageBits()
	return bits / 8
}

var _ prefetch.Prefetcher = (*SMS)(nil)
