package vldp

import (
	"fmt"

	"bingo/internal/checkpoint"
)

// encodeDHBEntries is the value codec for the delta history buffer. The
// fixed 3-slot delta histories are flattened into one column.
func encodeDHBEntries(w *checkpoint.Writer, vals []dhbEntry) {
	lastOffsets := make([]int, len(vals))
	firstOffsets := make([]int, len(vals))
	sawSeconds := make([]bool, len(vals))
	numDeltas := make([]int, len(vals))
	deltas := make([]int, 0, 3*len(vals))
	for i, v := range vals {
		lastOffsets[i] = v.lastOffset
		firstOffsets[i] = v.firstOffset
		sawSeconds[i] = v.sawSecond
		numDeltas[i] = v.numDeltas
		deltas = append(deltas, v.deltas[0], v.deltas[1], v.deltas[2])
	}
	w.Ints(lastOffsets)
	w.Ints(firstOffsets)
	w.Bools(sawSeconds)
	w.Ints(numDeltas)
	w.Ints(deltas)
}

// decodeDHBEntries mirrors encodeDHBEntries.
func decodeDHBEntries(r *checkpoint.Reader) []dhbEntry {
	lastOffsets := r.Ints()
	firstOffsets := r.Ints()
	sawSeconds := r.Bools()
	numDeltas := r.Ints()
	deltas := r.Ints()
	n := len(lastOffsets)
	if r.Err() != nil || len(firstOffsets) != n || len(sawSeconds) != n ||
		len(numDeltas) != n || len(deltas) != 3*n {
		return nil
	}
	out := make([]dhbEntry, n)
	for i := range out {
		out[i] = dhbEntry{
			lastOffset:  lastOffsets[i],
			firstOffset: firstOffsets[i],
			sawSecond:   sawSeconds[i],
			deltas:      [3]int{deltas[3*i], deltas[3*i+1], deltas[3*i+2]},
			numDeltas:   numDeltas[i],
		}
	}
	return out
}

// encodeDPTEntries is the value codec for the delta prediction tables.
func encodeDPTEntries(w *checkpoint.Writer, vals []dptEntry) {
	nexts := make([]int, len(vals))
	for i, v := range vals {
		nexts[i] = v.next
	}
	w.Ints(nexts)
}

// decodeDPTEntries mirrors encodeDPTEntries.
func decodeDPTEntries(r *checkpoint.Reader) []dptEntry {
	nexts := r.Ints()
	if r.Err() != nil {
		return nil
	}
	out := make([]dptEntry, len(nexts))
	for i := range out {
		out[i] = dptEntry{next: nexts[i]}
	}
	return out
}

// SaveState implements checkpoint.Checkpointable: the delta history
// buffer, the three cascaded prediction tables, and the offset table.
func (v *VLDP) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	if err := v.dhb.SaveState(w, encodeDHBEntries); err != nil {
		return err
	}
	for _, t := range v.dpts {
		if err := t.SaveState(w, encodeDPTEntries); err != nil {
			return err
		}
	}
	w.Ints(v.opt)
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable.
func (v *VLDP) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	if err := v.dhb.LoadState(r, decodeDHBEntries); err != nil {
		return fmt.Errorf("vldp history buffer: %w", err)
	}
	for i, t := range v.dpts {
		if err := t.LoadState(r, decodeDPTEntries); err != nil {
			return fmt.Errorf("vldp prediction table %d: %w", i, err)
		}
	}
	opt := r.Ints()
	if err := r.Err(); err != nil {
		return err
	}
	if len(opt) != len(v.opt) {
		return fmt.Errorf("vldp: snapshot offset table holds %d entries, table has %d", len(opt), len(v.opt))
	}
	blocks := v.rc.Blocks()
	bad := false
	v.dhb.Range(func(key uint64, e *dhbEntry) bool {
		bad = e.lastOffset < 0 || e.lastOffset >= blocks ||
			e.firstOffset < 0 || e.firstOffset >= blocks ||
			e.numDeltas < 0 || e.numDeltas > 3
		return !bad
	})
	if bad {
		return fmt.Errorf("vldp: snapshot history entry outside page geometry")
	}
	copy(v.opt, opt)
	return nil
}
