// Package vldp implements the Variable Length Delta Prefetcher (Shevgoor
// et al., MICRO'15): a delta history buffer tracks the last few deltas of
// each active page; cascaded delta prediction tables keyed by histories of
// length 1, 2, and 3 predict the next delta (longest match wins); an
// offset prediction table predicts the first delta of a page from its
// first offset. Multi-degree prefetching chains predictions through the
// tables — degree 4 by default, 32 in the ISO-degree aggressive variant.
package vldp

import (
	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// Config parameterises a VLDP instance.
type Config struct {
	PageBytes  uint64
	DHBEntries int // delta history buffer (16 in the paper)
	DHBWays    int
	DPTEntries int // per delta-prediction table (64 in the paper)
	DPTWays    int
	OPTEntries int // offset prediction table (64 = blocks per 4 KB page)
	Degree     int
}

// DefaultConfig is the paper's evaluated configuration.
func DefaultConfig() Config {
	return Config{
		PageBytes:  4096,
		DHBEntries: 16,
		DHBWays:    4,
		DPTEntries: 64,
		DPTWays:    4,
		OPTEntries: 64,
		Degree:     4,
	}
}

// AggressiveConfig is the ISO-degree variant (degree 32).
func AggressiveConfig() Config {
	c := DefaultConfig()
	c.Degree = 32
	return c
}

type dhbEntry struct {
	lastOffset  int
	firstOffset int
	sawSecond   bool
	deltas      [3]int // deltas[0] most recent
	numDeltas   int
}

type dptEntry struct {
	next int // predicted next delta
}

// VLDP is the variable-length delta prefetcher.
type VLDP struct {
	//ckpt:skip construction parameter, re-supplied by New before restore
	cfg Config
	//ckpt:skip derived from cfg.PageBytes in New; LoadState validates against it
	rc mem.RegionConfig
	//conc:core-local each core owns its VLDP instance and its tables
	dhb  *prefetch.Table[dhbEntry]
	dpts [3]*prefetch.Table[dptEntry] // index i keyed by history length i+1
	opt  []int                        // first-offset -> first delta (0 = unknown)

	// addrBuf backs the slice OnAccess returns; reused across calls so
	// the per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr
}

// New builds a VLDP instance.
func New(cfg Config) (*VLDP, error) {
	rc, err := mem.NewRegionConfig(cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	dhb, err := prefetch.NewTable[dhbEntry](cfg.DHBEntries, cfg.DHBWays)
	if err != nil {
		return nil, err
	}
	v := &VLDP{cfg: cfg, rc: rc, dhb: dhb, opt: make([]int, cfg.OPTEntries)}
	for i := range v.dpts {
		t, err := prefetch.NewTable[dptEntry](cfg.DPTEntries, cfg.DPTWays)
		if err != nil {
			return nil, err
		}
		v.dpts[i] = t
	}
	return v, nil
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *VLDP {
	v, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return v
}

// Factory returns a per-core factory.
func Factory(cfg Config) prefetch.Factory {
	return func(int) prefetch.Prefetcher { return MustNew(cfg) }
}

// Name implements prefetch.Prefetcher.
func (v *VLDP) Name() string {
	if v.cfg.Degree > 4 {
		return "vldp-aggr"
	}
	return "vldp"
}

// historyKey folds a delta history of length n (h[0] most recent) into a
// table key. Deltas are signed; fold each into 8 bits.
func historyKey(h []int) uint64 {
	k := uint64(len(h))
	for _, d := range h {
		k = k<<8 | uint64(uint8(int8(d)))
	}
	return k
}

// predict returns the next delta using the longest matching history.
func (v *VLDP) predict(h [3]int, n int) (int, bool) {
	for l := min(n, 3); l >= 1; l-- {
		if e, ok := v.dpts[l-1].Lookup(historyKey(h[:l]), true); ok {
			return e.next, true
		}
	}
	return 0, false
}

// OnAccess implements prefetch.Prefetcher.
func (v *VLDP) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	page := v.rc.RegionNumber(ev.Addr)
	offset := v.rc.BlockIndex(ev.Addr)
	base := v.rc.RegionBase(ev.Addr)

	e, ok := v.dhb.Lookup(page, true)
	if !ok {
		v.dhb.Insert(page, dhbEntry{lastOffset: offset, firstOffset: offset})
		// First access to the page: consult the OPT for a first-delta guess.
		if d := v.opt[offset%len(v.opt)]; d != 0 {
			if t := offset + d; t >= 0 && t < v.rc.Blocks() {
				v.addrBuf = append(v.addrBuf[:0], v.rc.BlockAddr(base, t)) //hot:alloc reused buffer grows to steady-state capacity
				return v.addrBuf
			}
		}
		return nil
	}

	delta := offset - e.lastOffset
	if delta == 0 {
		return nil
	}
	if !e.sawSecond {
		e.sawSecond = true
		v.opt[e.firstOffset%len(v.opt)] = delta
	}

	// Train the DPTs: each history length predicts this delta.
	for l := 1; l <= e.numDeltas && l <= 3; l++ {
		v.dpts[l-1].Insert(historyKey(e.deltas[:l]), dptEntry{next: delta})
	}

	// Shift the new delta into the history.
	e.deltas[2], e.deltas[1], e.deltas[0] = e.deltas[1], e.deltas[0], delta
	if e.numDeltas < 3 {
		e.numDeltas++
	}
	e.lastOffset = offset

	// Multi-degree chained prediction: feed each prediction back in.
	out := v.addrBuf[:0]
	h := e.deltas
	n := e.numDeltas
	off := offset
	for i := 0; i < v.cfg.Degree; i++ {
		d, ok := v.predict(h, n)
		if !ok {
			break
		}
		off += d
		if off < 0 || off >= v.rc.Blocks() {
			break
		}
		out = append(out, v.rc.BlockAddr(base, off)) //hot:alloc reused buffer grows to steady-state capacity
		h[2], h[1], h[0] = h[1], h[0], d
		if n < 3 {
			n++
		}
	}
	v.addrBuf = out
	return out
}

// OnEviction implements prefetch.Prefetcher.
func (v *VLDP) OnEviction(mem.Addr) {}

// StorageBytes implements prefetch.Prefetcher.
func (v *VLDP) StorageBytes() int {
	dhbBits := v.dhb.Capacity() * (1 + 4 + 26 + 6 + 6 + 3*8)
	dptBits := 0
	for _, t := range v.dpts {
		dptBits += t.Capacity() * (1 + 4 + 24 + 8)
	}
	optBits := len(v.opt) * 8
	return (dhbBits + dptBits + optBits) / 8
}

var _ prefetch.Prefetcher = (*VLDP)(nil)
