package vldp

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func access(a mem.Addr) prefetch.AccessEvent { return prefetch.AccessEvent{PC: 1, Addr: a} }

func pageAddr(page uint64, block int) mem.Addr {
	return mem.Addr(page*4096 + uint64(block)*64)
}

func TestLearnsDeltaChain(t *testing.T) {
	v := MustNew(DefaultConfig())
	// Train delta 2 on a few pages.
	for p := uint64(0); p < 4; p++ {
		for b := 0; b < 20; b += 2 {
			v.OnAccess(access(pageAddr(p, b)))
		}
	}
	// Fresh page: once delta 2 is observed, chained predictions follow.
	v.OnAccess(access(pageAddr(50, 0)))
	got := v.OnAccess(access(pageAddr(50, 2)))
	if len(got) == 0 {
		t.Fatal("trained VLDP should prefetch")
	}
	for i, a := range got {
		if want := pageAddr(50, 4+2*i); a != want {
			t.Fatalf("prefetch[%d] = %v, want %v", i, a, want)
		}
	}
	if len(got) > DefaultConfig().Degree {
		t.Fatalf("degree exceeded: %d", len(got))
	}
}

func TestOPTPredictsFirstDelta(t *testing.T) {
	v := MustNew(DefaultConfig())
	// Teach the OPT: pages first touched at block 0 continue with +3.
	for p := uint64(0); p < 4; p++ {
		v.OnAccess(access(pageAddr(p, 0)))
		v.OnAccess(access(pageAddr(p, 3)))
	}
	// First access to a fresh page at offset 0: OPT suggests +3.
	got := v.OnAccess(access(pageAddr(50, 0)))
	if len(got) != 1 || got[0] != pageAddr(50, 3) {
		t.Fatalf("OPT prediction = %v, want block 3", got)
	}
}

func TestLongerHistoryWins(t *testing.T) {
	v := MustNew(DefaultConfig())
	// Pattern: after deltas (1,1) comes 4; after a single delta 1 comes 1
	// most of the time. The 2-history table must override the 1-history.
	for p := uint64(0); p < 6; p++ {
		v.OnAccess(access(pageAddr(p, 0)))
		v.OnAccess(access(pageAddr(p, 1)))
		v.OnAccess(access(pageAddr(p, 2)))
		v.OnAccess(access(pageAddr(p, 6))) // (1,1) -> 4
	}
	v.OnAccess(access(pageAddr(50, 0)))
	v.OnAccess(access(pageAddr(50, 1)))
	got := v.OnAccess(access(pageAddr(50, 2)))
	if len(got) == 0 || got[0] != pageAddr(50, 6) {
		t.Fatalf("2-delta history should predict +4, got %v", got)
	}
}

func TestAggressiveDegree(t *testing.T) {
	v := MustNew(AggressiveConfig())
	for p := uint64(0); p < 4; p++ {
		for b := 0; b < 30; b++ {
			v.OnAccess(access(pageAddr(p, b)))
		}
	}
	v.OnAccess(access(pageAddr(50, 0)))
	got := v.OnAccess(access(pageAddr(50, 1)))
	if len(got) <= DefaultConfig().Degree {
		t.Fatalf("aggressive VLDP should chain deeper: %d", len(got))
	}
	if v.Name() != "vldp-aggr" {
		t.Fatalf("name = %q", v.Name())
	}
}

func TestPageBoundaryStopsChaining(t *testing.T) {
	v := MustNew(DefaultConfig())
	for p := uint64(0); p < 4; p++ {
		for b := 0; b < 64; b++ {
			v.OnAccess(access(pageAddr(p, b)))
		}
	}
	v.OnAccess(access(pageAddr(50, 62)))
	got := v.OnAccess(access(pageAddr(50, 63)))
	for _, a := range got {
		if a >= pageAddr(51, 0) {
			t.Fatalf("prefetch %v crossed the page", a)
		}
	}
}

func TestZeroDeltaIgnored(t *testing.T) {
	v := MustNew(DefaultConfig())
	v.OnAccess(access(pageAddr(5, 3)))
	if got := v.OnAccess(access(pageAddr(5, 3))); got != nil {
		t.Fatalf("repeat access should not prefetch: %v", got)
	}
}

func TestHistoryKey(t *testing.T) {
	if historyKey([]int{1}) == historyKey([]int{2}) {
		t.Fatal("different deltas should differ")
	}
	if historyKey([]int{1, 2}) == historyKey([]int{2, 1}) {
		t.Fatal("order should matter")
	}
	if historyKey([]int{1}) == historyKey([]int{1, 0}) {
		t.Fatal("length should matter")
	}
	if historyKey([]int{-1}) == historyKey([]int{1}) {
		t.Fatal("sign should matter")
	}
}

func TestIdentity(t *testing.T) {
	v := MustNew(DefaultConfig())
	if v.Name() != "vldp" || v.StorageBytes() <= 0 {
		t.Fatal("identity wrong")
	}
	v.OnEviction(0x1000)
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageBytes = 3000
	if _, err := New(cfg); err == nil {
		t.Fatal("bad page size should fail")
	}
}
