package bop

import (
	"fmt"

	"bingo/internal/checkpoint"
)

// SaveState implements checkpoint.Checkpointable. The candidate offset
// list is derived from the algorithm (not state), so only the learning
// scores, round cursors, selected offset, and recent-requests table go
// on the wire.
func (b *BOP) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	w.Ints(b.scores)
	w.Int(b.testIdx)
	w.Int(b.round)
	w.Int(b.best)
	w.U64s(b.rr)
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable.
func (b *BOP) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	scores := r.Ints()
	testIdx := r.Int()
	round := r.Int()
	best := r.Int()
	rr := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(scores) != len(b.offsets) {
		return fmt.Errorf("bop: snapshot scores %d candidate offsets, list has %d", len(scores), len(b.offsets))
	}
	if testIdx < 0 || testIdx >= len(b.offsets) {
		return fmt.Errorf("bop: snapshot test cursor %d out of range", testIdx)
	}
	if round < 0 || round >= b.cfg.RoundMax {
		return fmt.Errorf("bop: snapshot round %d out of range [0,%d)", round, b.cfg.RoundMax)
	}
	if best != 0 {
		ok := false
		for _, d := range b.offsets {
			if d == best {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("bop: snapshot best offset %d is not a candidate", best)
		}
	}
	for i, s := range scores {
		if s < 0 || s >= b.cfg.ScoreMax {
			return fmt.Errorf("bop: snapshot score %d for offset %d out of range [0,%d)", s, b.offsets[i], b.cfg.ScoreMax)
		}
	}
	if len(rr) != len(b.rr) {
		return fmt.Errorf("bop: snapshot RR table holds %d entries, table has %d", len(rr), len(b.rr))
	}
	copy(b.scores, scores)
	b.testIdx = testIdx
	b.round = round
	b.best = best
	copy(b.rr, rr)
	return nil
}
