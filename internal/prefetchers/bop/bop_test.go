package bop

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func access(a mem.Addr) prefetch.AccessEvent { return prefetch.AccessEvent{PC: 1, Addr: a} }

func TestOffsetList(t *testing.T) {
	offs := offsetList()
	if len(offs) == 0 {
		t.Fatal("empty offset list")
	}
	seen := map[int]bool{}
	for _, o := range offs {
		if o < 1 || o > 256 {
			t.Errorf("offset %d out of range", o)
		}
		if seen[o] {
			t.Errorf("duplicate offset %d", o)
		}
		seen[o] = true
		v := o
		for _, p := range []int{2, 3, 5} {
			for v%p == 0 {
				v /= p
			}
		}
		if v != 1 {
			t.Errorf("offset %d has a prime factor > 5", o)
		}
	}
	// A few expected members and non-members.
	for _, want := range []int{1, 2, 3, 4, 5, 6, 8, 250, 256} {
		if !seen[want] {
			t.Errorf("offset %d missing", want)
		}
	}
	for _, not := range []int{7, 11, 13, 14, 22, 49} {
		if seen[not] {
			t.Errorf("offset %d should be excluded", not)
		}
	}
}

func TestLearnsBestOffset(t *testing.T) {
	b := MustNew(DefaultConfig())
	// A long stride-3 stream: offset 3 keeps scoring until selected.
	blk := uint64(1000)
	for i := 0; i < 20000; i++ {
		b.OnAccess(access(mem.Addr(blk << mem.BlockShift)))
		blk += 3
		if blk%64 < 3 { // stay within pages for clean RR hits
			blk += 3
		}
	}
	// For a stride-3 stream every multiple of 3 predicts correctly (X−6,
	// X−9, … are all recent), so any of them is a legitimate winner.
	if got := b.BestOffset(); got == 0 || got%3 != 0 {
		t.Fatalf("best offset = %d, want a positive multiple of 3", got)
	}
}

func TestPrefetchUsesBestOffset(t *testing.T) {
	b := MustNew(DefaultConfig())
	b.best = 4 // inject a selected offset
	got := b.OnAccess(access(mem.Addr(64 * 10)))
	if len(got) != 1 || got[0] != mem.Addr(64*14) {
		t.Fatalf("prefetch = %v, want block 14", got)
	}
}

func TestDisabledWhenBestZero(t *testing.T) {
	b := MustNew(DefaultConfig())
	b.best = 0
	if got := b.OnAccess(access(mem.Addr(64 * 10))); got != nil {
		t.Fatalf("disabled prefetcher issued %v", got)
	}
}

func TestPageBoundaryRespected(t *testing.T) {
	b := MustNew(DefaultConfig())
	b.best = 8
	// Block 62 of a 64-block page: +8 crosses the page.
	if got := b.OnAccess(access(mem.Addr(64 * 62))); got != nil {
		t.Fatalf("prefetch across page boundary: %v", got)
	}
}

func TestAggressiveDegree(t *testing.T) {
	b := MustNew(AggressiveConfig())
	b.best = 1
	got := b.OnAccess(access(mem.Addr(0)))
	if len(got) != 32 {
		t.Fatalf("aggressive BOP issued %d, want 32", len(got))
	}
	if b.Name() != "bop-aggr" {
		t.Fatalf("name = %q", b.Name())
	}
}

func TestRandomTrafficDisablesPrefetch(t *testing.T) {
	b := MustNew(DefaultConfig())
	// Scattered accesses: no offset should accumulate a good score, so
	// after enough rounds the prefetcher turns itself off.
	blk := uint64(1)
	for i := 0; i < 500000; i++ {
		blk = blk*6364136223846793005 + 1442695040888963407 // LCG
		b.OnAccess(access(mem.Addr((blk % (1 << 30)) << mem.BlockShift)))
	}
	if b.BestOffset() != 0 {
		t.Fatalf("random traffic should disable BOP, best=%d", b.BestOffset())
	}
}

func TestStorageAndEviction(t *testing.T) {
	b := MustNew(DefaultConfig())
	if b.Name() != "bop" || b.StorageBytes() <= 0 {
		t.Fatal("identity wrong")
	}
	b.OnEviction(0x1000) // no-op
}
