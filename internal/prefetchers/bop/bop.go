// Package bop implements the Best-Offset Prefetcher (Michaud, HPCA'16),
// winner of DPC-2: a round-robin learning phase scores a fixed list of
// candidate offsets by testing, for each observed access X, whether X−d
// was recently accessed (recent-requests table); the best-scoring offset
// is then used to prefetch X+D until the next learning round completes.
//
// Simplification vs. the original: the recent-requests table is filled at
// access time rather than at prefetch-fill time, so the timeliness
// correction of the original is approximated by the RR table's limited
// reach. Degree >1 (the paper's "aggressive" ISO-degree variant) issues
// multiples X+D, X+2D, ….
package bop

import (
	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// Config parameterises a BOP instance.
type Config struct {
	RRTableEntries int // recent-requests table (256 in the paper's setup)
	ScoreMax       int // learning stops early when a score reaches this
	RoundMax       int // max learning rounds before selection
	BadScore       int // offsets scoring below this disable prefetching
	PageBytes      uint64
	Degree         int // multiples of the best offset issued per access
}

// DefaultConfig is the paper's evaluated configuration (degree 1).
func DefaultConfig() Config {
	return Config{
		RRTableEntries: 256,
		ScoreMax:       31,
		RoundMax:       100,
		BadScore:       1,
		PageBytes:      4096,
		Degree:         1,
	}
}

// AggressiveConfig is the ISO-degree variant of Figure 10 (degree 32).
func AggressiveConfig() Config {
	c := DefaultConfig()
	c.Degree = 32
	return c
}

// offsetList returns Michaud's candidate offsets: 1..256 whose prime
// factors are all ≤ 5.
func offsetList() []int {
	var out []int
	for n := 1; n <= 256; n++ {
		v := n
		for _, p := range []int{2, 3, 5} {
			for v%p == 0 {
				v /= p
			}
		}
		if v == 1 {
			out = append(out, n)
		}
	}
	return out
}

// BOP is the best-offset prefetcher.
type BOP struct {
	//ckpt:skip construction parameter, re-supplied by New; LoadState validates against it
	cfg Config
	//ckpt:skip derived from cfg.RegionBytes in New
	rc mem.RegionConfig
	//ckpt:skip candidate list, recomputed from cfg in New; LoadState validates its length
	offsets []int
	scores  []int
	testIdx int
	round   int
	best    int // currently selected offset; 0 disables prefetching
	rr      []uint64
	//ckpt:skip derived geometry, recomputed from cfg in New
	rrMask uint64

	// addrBuf backs the slice OnAccess returns; reused across calls so
	// the per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr
}

// New builds a BOP instance.
func New(cfg Config) (*BOP, error) {
	rc, err := mem.NewRegionConfig(cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	if !mem.IsPow2(cfg.RRTableEntries) {
		cfg.RRTableEntries = DefaultConfig().RRTableEntries
	}
	offs := offsetList()
	return &BOP{
		cfg:     cfg,
		rc:      rc,
		offsets: offs,
		scores:  make([]int, len(offs)),
		best:    1, // start with next-line until the first round completes
		rr:      make([]uint64, cfg.RRTableEntries),
		rrMask:  uint64(cfg.RRTableEntries - 1),
	}, nil
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *BOP {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Factory returns a per-core factory.
func Factory(cfg Config) prefetch.Factory {
	return func(int) prefetch.Prefetcher { return MustNew(cfg) }
}

// Name implements prefetch.Prefetcher.
func (b *BOP) Name() string {
	if b.cfg.Degree > 1 {
		return "bop-aggr"
	}
	return "bop"
}

// BestOffset returns the currently selected offset (0 = prefetch off).
func (b *BOP) BestOffset() int { return b.best }

func (b *BOP) rrInsert(block uint64) {
	b.rr[mem.Mix64(block)&b.rrMask] = block
}

func (b *BOP) rrContains(block uint64) bool {
	return b.rr[mem.Mix64(block)&b.rrMask] == block
}

// OnAccess implements prefetch.Prefetcher.
func (b *BOP) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	block := ev.Addr.BlockNumber()
	b.learn(block)
	b.rrInsert(block)
	if b.best == 0 {
		return nil
	}
	blocksPerPage := uint64(b.rc.Blocks())
	pageBlockBase := block &^ (blocksPerPage - 1)
	out := b.addrBuf[:0]
	for m := 1; m <= b.cfg.Degree; m++ {
		t := block + uint64(b.best*m)
		if t&^(blocksPerPage-1) != pageBlockBase {
			break // BOP never crosses page boundaries
		}
		out = append(out, mem.Addr(t<<mem.BlockShift)) //hot:alloc reused buffer grows to steady-state capacity
	}
	b.addrBuf = out
	return out
}

// learn tests one candidate offset per access, closing the round when the
// whole list has been tested, and selects a new best offset when a score
// saturates or RoundMax rounds elapse.
func (b *BOP) learn(block uint64) {
	d := b.offsets[b.testIdx]
	if b.rrContains(block - uint64(d)) {
		b.scores[b.testIdx]++
		if b.scores[b.testIdx] >= b.cfg.ScoreMax {
			b.selectBest()
			return
		}
	}
	b.testIdx++
	if b.testIdx == len(b.offsets) {
		b.testIdx = 0
		b.round++
		if b.round >= b.cfg.RoundMax {
			b.selectBest()
		}
	}
}

func (b *BOP) selectBest() {
	bestIdx, bestScore := 0, -1
	for i, s := range b.scores {
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestScore <= b.cfg.BadScore {
		b.best = 0 // nothing predicts well: turn prefetching off
	} else {
		b.best = b.offsets[bestIdx]
	}
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.testIdx = 0
	b.round = 0
}

// OnEviction implements prefetch.Prefetcher.
func (b *BOP) OnEviction(mem.Addr) {}

// StorageBytes implements prefetch.Prefetcher: the RR table plus the
// score/offset machinery.
func (b *BOP) StorageBytes() int {
	rrBits := len(b.rr) * 12 // hashed partial addresses in hardware
	scoreBits := len(b.offsets) * 5
	return (rrBits + scoreBits + 64) / 8
}

var _ prefetch.Prefetcher = (*BOP)(nil)
