package ampm

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.ZoneEntries = 64
	cfg.ZoneWays = 4
	return cfg
}

func access(a mem.Addr) prefetch.AccessEvent { return prefetch.AccessEvent{PC: 1, Addr: a} }

func addr(zone uint64, block int) mem.Addr {
	return mem.Addr(zone*4096 + uint64(block)*64)
}

func TestStrideDetection(t *testing.T) {
	a := MustNew(smallConfig())
	// Unit-stride: blocks 0, 1, 2 — after the third access the pattern
	// (t-1, t-2 accessed) holds for stride 1 and block 3 is prefetched.
	a.OnAccess(access(addr(5, 0)))
	a.OnAccess(access(addr(5, 1)))
	got := a.OnAccess(access(addr(5, 2)))
	found := false
	for _, p := range got {
		if p == addr(5, 3) {
			found = true
		}
	}
	if !found {
		t.Fatalf("stride +1 should prefetch block 3, got %v", got)
	}
}

func TestNonUnitStride(t *testing.T) {
	a := MustNew(smallConfig())
	a.OnAccess(access(addr(5, 0)))
	a.OnAccess(access(addr(5, 4)))
	got := a.OnAccess(access(addr(5, 8)))
	found := false
	for _, p := range got {
		if p == addr(5, 12) {
			found = true
		}
	}
	if !found {
		t.Fatalf("stride +4 should prefetch block 12, got %v", got)
	}
}

func TestBackwardStride(t *testing.T) {
	a := MustNew(smallConfig())
	a.OnAccess(access(addr(5, 60)))
	a.OnAccess(access(addr(5, 59)))
	got := a.OnAccess(access(addr(5, 58)))
	found := false
	for _, p := range got {
		if p == addr(5, 57) {
			found = true
		}
	}
	if !found {
		t.Fatalf("stride -1 should prefetch block 57, got %v", got)
	}
}

func TestNoPrefetchWithoutPattern(t *testing.T) {
	a := MustNew(smallConfig())
	a.OnAccess(access(addr(5, 0)))
	if got := a.OnAccess(access(addr(5, 30))); got != nil {
		t.Fatalf("no stride pattern yet, got %v", got)
	}
}

func TestZoneBoundaryRespected(t *testing.T) {
	a := MustNew(smallConfig())
	a.OnAccess(access(addr(5, 61)))
	a.OnAccess(access(addr(5, 62)))
	got := a.OnAccess(access(addr(5, 63)))
	for _, p := range got {
		if p >= addr(6, 0) {
			t.Fatalf("prefetch %v crosses the zone boundary", p)
		}
	}
}

func TestNoDuplicatePrefetch(t *testing.T) {
	a := MustNew(smallConfig())
	a.OnAccess(access(addr(5, 0)))
	a.OnAccess(access(addr(5, 1)))
	a.OnAccess(access(addr(5, 2)))
	// Re-access block 2: block 3 was already marked prefetched.
	got := a.OnAccess(access(addr(5, 2)))
	for _, p := range got {
		if p == addr(5, 3) {
			t.Fatal("block 3 prefetched twice")
		}
	}
}

func TestDegreeBound(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxDegree = 1
	a := MustNew(cfg)
	// Build a dense history so many strides qualify.
	for b := 0; b < 16; b++ {
		a.OnAccess(access(addr(5, b)))
	}
	if got := a.OnAccess(access(addr(5, 16))); len(got) > 1 {
		t.Fatalf("degree 1 exceeded: %v", got)
	}
}

func TestZonesIndependent(t *testing.T) {
	a := MustNew(smallConfig())
	a.OnAccess(access(addr(5, 0)))
	a.OnAccess(access(addr(5, 1)))
	// Zone 9 has no history: first access there must not prefetch.
	if got := a.OnAccess(access(addr(9, 2))); got != nil {
		t.Fatalf("fresh zone should not prefetch, got %v", got)
	}
}

func TestEvictionIsNoOp(t *testing.T) {
	a := MustNew(smallConfig())
	a.OnEviction(addr(5, 0)) // must not panic
}

func TestStorageAndName(t *testing.T) {
	a := MustNew(DefaultConfig())
	if a.Name() != "ampm" {
		t.Fatal("name wrong")
	}
	if a.StorageBytes() <= 0 {
		t.Fatal("storage should be positive")
	}
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ZoneBytes = 3000
	if _, err := New(cfg); err == nil {
		t.Fatal("bad zone size should fail")
	}
}
