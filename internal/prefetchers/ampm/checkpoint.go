package ampm

import (
	"fmt"

	"bingo/internal/checkpoint"
	"bingo/internal/prefetch"
)

// encodeZoneMaps is the value codec for the zone table.
func encodeZoneMaps(w *checkpoint.Writer, vals []zoneMap) {
	accessed := make([]uint64, len(vals))
	prefetched := make([]uint64, len(vals))
	for i, v := range vals {
		accessed[i] = uint64(v.accessed)
		prefetched[i] = uint64(v.prefetched)
	}
	w.U64s(accessed)
	w.U64s(prefetched)
}

// decodeZoneMaps mirrors encodeZoneMaps.
func decodeZoneMaps(r *checkpoint.Reader) []zoneMap {
	accessed := r.U64s()
	prefetched := r.U64s()
	if r.Err() != nil || len(prefetched) != len(accessed) {
		return nil
	}
	out := make([]zoneMap, len(accessed))
	for i := range out {
		out[i] = zoneMap{
			accessed:   prefetch.Footprint(accessed[i]),
			prefetched: prefetch.Footprint(prefetched[i]),
		}
	}
	return out
}

// SaveState implements checkpoint.Checkpointable.
func (a *AMPM) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	return a.zones.SaveState(w, encodeZoneMaps)
}

// LoadState implements checkpoint.Checkpointable.
func (a *AMPM) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	if err := a.zones.LoadState(r, decodeZoneMaps); err != nil {
		return fmt.Errorf("ampm: %w", err)
	}
	blocks := a.rc.Blocks()
	if blocks < 64 {
		bad := false
		a.zones.Range(func(key uint64, v *zoneMap) bool {
			bad = uint64(v.accessed)>>uint(blocks) != 0 || uint64(v.prefetched)>>uint(blocks) != 0
			return !bad
		})
		if bad {
			return fmt.Errorf("ampm: snapshot access map marks blocks beyond the %d-block zone", blocks)
		}
	}
	return nil
}
