// Package ampm implements Access Map Pattern Matching (Ishii et al.,
// ICS'09), winner of DPC-1: a table of per-zone access maps (two bits per
// cache block) in which strided patterns are detected by checking, for
// each candidate stride k, whether blocks at -k and -2k from the current
// access were already touched. Per the paper's methodology the map table
// is enlarged to cover the whole LLC capacity.
package ampm

import (
	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

// Config parameterises an AMPM instance.
type Config struct {
	ZoneBytes   uint64 // access-map granularity
	ZoneEntries int    // number of concurrently tracked zones
	ZoneWays    int
	MaxStride   int // candidate strides tested are ±1..MaxStride
	MaxDegree   int // prefetches issued per access
}

// DefaultConfig sizes the map table to cover an 8 MB LLC with 4 KB zones
// (2048 zones), as the paper's sensitivity analysis prescribes.
func DefaultConfig() Config {
	return Config{
		ZoneBytes:   4096,
		ZoneEntries: 2048,
		ZoneWays:    16,
		MaxStride:   16,
		MaxDegree:   4,
	}
}

type zoneMap struct {
	accessed   prefetch.Footprint
	prefetched prefetch.Footprint
}

// AMPM is the access-map prefetcher.
type AMPM struct {
	//ckpt:skip construction parameter, re-supplied by New before restore
	cfg Config
	//ckpt:skip derived from cfg.ZoneBytes in New
	rc mem.RegionConfig
	//conc:core-local each core owns its AMPM instance and its zone table
	zones *prefetch.Table[zoneMap]

	// addrBuf backs the slice OnAccess returns; reused across calls so
	// the per-access hot path stays allocation-free.
	//ckpt:skip scratch buffer, contents dead between calls
	addrBuf []mem.Addr
}

// New builds an AMPM instance.
func New(cfg Config) (*AMPM, error) {
	rc, err := mem.NewRegionConfig(cfg.ZoneBytes)
	if err != nil {
		return nil, err
	}
	zones, err := prefetch.NewTable[zoneMap](cfg.ZoneEntries, cfg.ZoneWays)
	if err != nil {
		return nil, err
	}
	return &AMPM{cfg: cfg, rc: rc, zones: zones}, nil
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *AMPM {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Factory returns a per-core factory.
func Factory(cfg Config) prefetch.Factory {
	return func(int) prefetch.Prefetcher { return MustNew(cfg) }
}

// Name implements prefetch.Prefetcher.
func (a *AMPM) Name() string { return "ampm" }

// OnAccess implements prefetch.Prefetcher: mark the block in its zone map,
// then emit prefetches for every stride whose two predecessors are marked.
func (a *AMPM) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	zone := a.rc.RegionNumber(ev.Addr)
	idx := a.rc.BlockIndex(ev.Addr)
	zm, ok := a.zones.Lookup(zone, true)
	if !ok {
		a.zones.Insert(zone, zoneMap{accessed: prefetch.Footprint(0).With(idx)})
		return nil
	}
	zm.accessed = zm.accessed.With(idx)

	blocks := a.rc.Blocks()
	base := a.rc.RegionBase(ev.Addr)
	out := a.addrBuf[:0]
	for k := 1; k <= a.cfg.MaxStride && len(out) < a.cfg.MaxDegree; k++ {
		out = a.tryStride(zm, base, idx, k, blocks, out)
		if len(out) < a.cfg.MaxDegree {
			out = a.tryStride(zm, base, idx, -k, blocks, out)
		}
	}
	a.addrBuf = out
	return out
}

// tryStride appends a prefetch for idx+k when the pattern (idx-k, idx-2k
// both accessed) holds and the target is unvisited, as in the original
// hardware's candidate test.
func (a *AMPM) tryStride(zm *zoneMap, base mem.Addr, idx, k, blocks int, out []mem.Addr) []mem.Addr {
	t := idx + k
	p1 := idx - k
	p2 := idx - 2*k
	if t < 0 || t >= blocks || p1 < 0 || p1 >= blocks || p2 < 0 || p2 >= blocks {
		return out
	}
	if !zm.accessed.Test(p1) || !zm.accessed.Test(p2) {
		return out
	}
	if zm.accessed.Test(t) || zm.prefetched.Test(t) {
		return out
	}
	zm.prefetched = zm.prefetched.With(t)
	return append(out, a.rc.BlockAddr(base, t)) //hot:alloc reused buffer grows to steady-state capacity
}

// OnEviction implements prefetch.Prefetcher; AMPM keeps no residency
// state keyed to cache contents.
func (a *AMPM) OnEviction(mem.Addr) {}

// StorageBytes implements prefetch.Prefetcher: two bits per block per
// zone plus the zone tag.
func (a *AMPM) StorageBytes() int {
	const tagBits = 26
	per := 1 + 4 + tagBits + 2*a.rc.Blocks()
	return a.zones.Capacity() * per / 8
}

var _ prefetch.Prefetcher = (*AMPM)(nil)
