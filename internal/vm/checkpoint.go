package vm

import (
	"fmt"
	"sort"

	"bingo/internal/checkpoint"
)

// maxRefillReplay bounds free-list reconstruction; a corrupt cursor must
// not turn restore into an unbounded allocation loop.
const maxRefillReplay = 1 << 20

// SaveState implements checkpoint.Checkpointable. The first-touch map is
// serialised sorted by virtual page (map order is nondeterministic, the
// wire format must not be); the shuffled free list is captured as its
// refill cursor rather than its contents, since the RNG stream is
// deterministic from the constructor seed.
func (t *Translator) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	vpns := make([]uint64, 0, len(t.mapping))
	for vpn := range t.mapping {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	frames := make([]uint64, len(vpns))
	for i, vpn := range vpns {
		frames[i] = t.mapping[vpn]
	}
	w.U64s(vpns)
	w.U64s(frames)
	w.Int(t.nextFree)
	w.Int(t.refills)
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable. It requires a freshly
// built translator with the same seed and geometry: the free list is
// rebuilt by replaying the recorded number of refills against the fresh
// RNG, which repositions the random-frame stream exactly where the
// snapshot left it.
func (t *Translator) LoadState(r *checkpoint.Reader) error {
	if len(t.mapping) != 0 || t.refills != 0 {
		return fmt.Errorf("vm: checkpoint restore requires a freshly built translator")
	}
	r.Version(1)
	vpns := r.U64s()
	frames := r.U64s()
	nextFree := r.Int()
	refills := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if len(vpns) != len(frames) {
		return fmt.Errorf("vm: snapshot maps %d pages to %d frames", len(vpns), len(frames))
	}
	if refills < 0 || refills > maxRefillReplay {
		return fmt.Errorf("vm: refill cursor %d out of range", refills)
	}
	for i := 0; i < refills; i++ {
		t.refillFreeList()
	}
	// refillFreeList counted its own calls during the replay.
	if t.refills != refills {
		return fmt.Errorf("vm: refill replay diverged (%d, want %d)", t.refills, refills)
	}
	if nextFree < 0 || nextFree > len(t.freeList) {
		return fmt.Errorf("vm: free-list cursor %d out of range [0,%d]", nextFree, len(t.freeList))
	}
	// Every allocation consumed one free-list slot and created one
	// mapping entry, so the counts must agree.
	if len(vpns) != nextFree {
		return fmt.Errorf("vm: snapshot maps %d pages but consumed %d frames", len(vpns), nextFree)
	}
	allocated := make(map[uint64]bool, nextFree)
	for _, f := range t.freeList[:nextFree] {
		allocated[f] = true
	}
	for i, vpn := range vpns {
		if i > 0 && vpns[i-1] >= vpn {
			return fmt.Errorf("vm: snapshot page numbers not strictly increasing")
		}
		// Each mapped frame must be one the replayed stream handed out,
		// exactly once — anything else is a silently-wrong snapshot.
		if !allocated[frames[i]] {
			return fmt.Errorf("vm: snapshot frame %#x for page %#x was never allocated (or allocated twice)", frames[i], vpn)
		}
		delete(allocated, frames[i])
		t.mapping[vpn] = frames[i]
	}
	t.nextFree = nextFree
	return nil
}
