// Package vm implements virtual-to-physical address translation using the
// random first-touch policy the paper adopts (§V, citing Tag Tables): the
// first access to a virtual page assigns it a random, previously unused
// physical frame. This deliberately destroys contiguity across OS pages —
// which is why spatial prefetchers must confine themselves to intra-region
// patterns — while keeping runs fully deterministic under a fixed seed.
package vm

import (
	"fmt"
	"math/rand"
	"sync"

	"bingo/internal/mem"
)

// DefaultPageSize is the OS page size used throughout the paper (4 KB).
const DefaultPageSize = 4096

// Translator maps virtual pages to physical frames with random first-touch
// assignment. Translate (which may allocate) and the checkpoint methods
// serialize on an internal mutex; Lookup is a read-only fast path safe to
// call concurrently with Translate, which the parallel frontend exploits:
// workers resolve already-touched pages lock-free of the driver, and
// first touches are staged to the driver so the RNG draw order — and
// therefore every frame assignment — matches a serial run exactly.
type Translator struct {
	//ckpt:skip zero value is ready; never persisted
	mu sync.RWMutex
	//ckpt:skip derived from the page size re-supplied to NewTranslator
	pageShift uint
	//ckpt:skip derived from the page size re-supplied to NewTranslator
	pageMask uint64
	// mapping entries are write-once (a page's frame never changes after
	// first touch), so a Lookup hit is always the final value even while
	// the driver is allocating other pages under mu.
	mapping map[uint64]uint64 // virtual page -> physical frame
	//ckpt:skip rebuilt by replaying the persisted refill count against the seeded RNG
	freeList []uint64 // shuffled physical frame numbers
	nextFree int
	//ckpt:skip repositioned by replaying refills from the constructor seed
	rng *rand.Rand
	//ckpt:skip construction parameter, re-supplied to NewTranslator
	frames uint64
	// refills counts refillFreeList calls. The RNG stream is deterministic
	// from the constructor seed, so a checkpoint stores only this cursor
	// and restore replays the refills to rebuild the identical free list
	// (see LoadState in checkpoint.go).
	refills int
}

// NewTranslator creates a translator over a physical memory of memBytes
// using pageSize-byte pages (both powers of two). Frames are handed out in
// a seeded random order; when physical memory is exhausted additional
// frames are synthesised past the end (the simulator never swaps).
func NewTranslator(memBytes, pageSize uint64, seed int64) (*Translator, error) {
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("vm: page size %d must be a power of two", pageSize)
	}
	if memBytes < pageSize {
		return nil, fmt.Errorf("vm: memory size %d smaller than one page", memBytes)
	}
	t := &Translator{
		pageShift: mem.Log2(pageSize),
		pageMask:  pageSize - 1,
		mapping:   make(map[uint64]uint64),
		rng:       rand.New(rand.NewSource(seed)),
		frames:    memBytes / pageSize,
	}
	return t, nil
}

// MustTranslator is NewTranslator that panics on error.
func MustTranslator(memBytes, pageSize uint64, seed int64) *Translator {
	t, err := NewTranslator(memBytes, pageSize, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// PageSize returns the page size in bytes.
func (t *Translator) PageSize() uint64 { return t.pageMask + 1 }

// MappedPages returns how many virtual pages have been touched so far.
func (t *Translator) MappedPages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.mapping)
}

// Translate maps a virtual address to its physical address, allocating a
// random frame on first touch. Only one goroutine may be inside Translate
// at a time (the mutex enforces it); concurrent Lookup calls are fine.
func (t *Translator) Translate(va mem.Addr) mem.Addr {
	vpn := uint64(va) >> t.pageShift
	t.mu.Lock()
	frame, ok := t.mapping[vpn]
	if !ok {
		frame = t.allocFrame()
		t.mapping[vpn] = frame //hot:alloc first-touch page mapping; the table grows once per page
	}
	t.mu.Unlock()
	return mem.Addr(frame<<t.pageShift | uint64(va)&t.pageMask)
}

// Lookup resolves va only if its page has already been touched; it never
// allocates. Parallel frontends use it as the concurrent fast path: a hit
// is final (entries are write-once), a miss means the caller must fall
// back to a serialized Translate so the first-touch RNG draw happens in
// deterministic order.
func (t *Translator) Lookup(va mem.Addr) (mem.Addr, bool) {
	vpn := uint64(va) >> t.pageShift
	t.mu.RLock()
	frame, ok := t.mapping[vpn]
	t.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return mem.Addr(frame<<t.pageShift | uint64(va)&t.pageMask), true
}

// allocFrame returns the next frame from a lazily built shuffled free list.
// The list is materialised in chunks so that huge physical memories do not
// cost a giant up-front allocation.
func (t *Translator) allocFrame() uint64 {
	if t.nextFree >= len(t.freeList) {
		t.refillFreeList()
	}
	f := t.freeList[t.nextFree]
	t.nextFree++
	return f
}

const freeListChunk = 1 << 16

//hot:alloc lazy free-list refill, amortized over 64Ki translations
func (t *Translator) refillFreeList() {
	t.refills++
	base := uint64(len(t.freeList))
	n := uint64(freeListChunk)
	if base < t.frames && base+n > t.frames {
		n = t.frames - base
	}
	if n == 0 {
		n = freeListChunk // past physical memory: keep synthesising frames
	}
	chunk := make([]uint64, n)
	for i := range chunk {
		chunk[i] = base + uint64(i)
	}
	t.rng.Shuffle(len(chunk), func(i, j int) { chunk[i], chunk[j] = chunk[j], chunk[i] })
	t.freeList = append(t.freeList, chunk...)
}

// Identity is a Translator-compatible pass-through used by tests and by
// functional (timing-free) analyses where translation is irrelevant.
type Identity struct{}

// Translate returns va unchanged.
func (Identity) Translate(va mem.Addr) mem.Addr { return va }

// Mapper is the minimal translation interface consumed by the system.
type Mapper interface {
	Translate(va mem.Addr) mem.Addr
}

var (
	_ Mapper = (*Translator)(nil)
	_ Mapper = Identity{}
)
