package vm

import (
	"testing"
	"testing/quick"

	"bingo/internal/mem"
)

func TestTranslatorErrors(t *testing.T) {
	if _, err := NewTranslator(1<<20, 3000, 1); err == nil {
		t.Error("non-pow2 page size should fail")
	}
	if _, err := NewTranslator(1024, 4096, 1); err == nil {
		t.Error("memory smaller than a page should fail")
	}
}

func TestMustTranslatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTranslator should panic on bad config")
		}
	}()
	MustTranslator(0, 4096, 1)
}

func TestPageOffsetPreserved(t *testing.T) {
	tr := MustTranslator(1<<24, 4096, 1)
	va := mem.Addr(0x1234_5678)
	pa := tr.Translate(va)
	if uint64(pa)&4095 != uint64(va)&4095 {
		t.Fatalf("page offset not preserved: va=%v pa=%v", va, pa)
	}
}

func TestStableMapping(t *testing.T) {
	tr := MustTranslator(1<<24, 4096, 1)
	va := mem.Addr(0x8000_0000)
	first := tr.Translate(va)
	for i := 0; i < 10; i++ {
		if got := tr.Translate(va + mem.Addr(i*64)); got>>12 != first>>12 {
			t.Fatalf("same virtual page translated to different frames")
		}
	}
	if tr.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d, want 1", tr.MappedPages())
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a := MustTranslator(1<<24, 4096, 7)
	b := MustTranslator(1<<24, 4096, 7)
	for i := 0; i < 100; i++ {
		va := mem.Addr(i * 4096)
		if a.Translate(va) != b.Translate(va) {
			t.Fatal("same seed should produce identical mappings")
		}
	}
	c := MustTranslator(1<<24, 4096, 8)
	same := 0
	for i := 0; i < 100; i++ {
		va := mem.Addr(i * 4096)
		if a.Translate(va) == c.Translate(va) {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("different seeds mapped %d/100 pages identically", same)
	}
}

func TestFramesUnique(t *testing.T) {
	tr := MustTranslator(1<<26, 4096, 3)
	seen := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		pa := tr.Translate(mem.Addr(uint64(i) * 4096))
		frame := uint64(pa) >> 12
		if seen[frame] {
			t.Fatalf("frame %d assigned twice", frame)
		}
		seen[frame] = true
	}
}

func TestBeyondPhysicalMemorySynthesises(t *testing.T) {
	tr := MustTranslator(1<<16, 4096, 2) // only 16 frames
	for i := 0; i < 100; i++ {
		tr.Translate(mem.Addr(uint64(i) * 4096)) // must not panic or loop
	}
	if tr.MappedPages() != 100 {
		t.Fatalf("MappedPages = %d", tr.MappedPages())
	}
}

func TestIdentity(t *testing.T) {
	f := func(raw uint64) bool {
		return Identity{}.Translate(mem.Addr(raw)) == mem.Addr(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageSize(t *testing.T) {
	tr := MustTranslator(1<<24, 8192, 1)
	if tr.PageSize() != 8192 {
		t.Fatalf("PageSize = %d", tr.PageSize())
	}
}
