package checkpoint

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Reader decodes one section payload. Errors are sticky: after the first
// failure every subsequent getter returns a zero value, and Err (or
// Close) reports the failure. Every count read from the payload is
// bounded by the bytes that remain, so a corrupt length cannot provoke a
// huge allocation.
type Reader struct {
	id   string
	data []byte
	off  int
	err  error
}

// failf records the first error, tagged with the section id.
func (r *Reader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: section %q: %s", r.id, fmt.Sprintf(format, args...))
	}
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Close verifies the section was consumed exactly: trailing bytes mean
// the reader's schema is behind the writer's. It returns the sticky
// error if one is pending.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("checkpoint: section %q: %d trailing bytes (schema drift?)", r.id, len(r.data)-r.off)
	}
	return nil
}

// take returns the next n bytes, or nil after recording an error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.failf("truncated: need %d bytes, %d left", n, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) uint(n int) uint64 {
	b := r.take(n)
	if b == nil {
		return 0
	}
	var scratch [8]byte
	copy(scratch[:], b)
	return binary.LittleEndian.Uint64(scratch[:])
}

// Version reads the component format version and errors unless it equals
// want.
func (r *Reader) Version(want uint16) {
	got := uint16(r.uint(2))
	if r.err == nil && got != want {
		r.failf("payload format version %d, want %d", got, want)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 { return uint8(r.uint(1)) }

// U32 reads a uint32.
func (r *Reader) U32() uint32 { return uint32(r.uint(4)) }

// U64 reads a uint64.
func (r *Reader) U64() uint64 { return r.uint(8) }

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.uint(8)) }

// Int reads an int64-encoded int.
func (r *Reader) Int() int { return int(int64(r.uint(8))) }

// Bool reads a one-byte bool, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	b := r.uint(1)
	if r.err == nil && b > 1 {
		r.failf("invalid bool byte %d", b)
	}
	return b == 1
}

// count reads a collection length and bounds it so the upcoming
// allocation cannot exceed the bytes actually present.
func (r *Reader) count(elemBytes int) int {
	c := r.uint(4)
	if r.err != nil {
		return 0
	}
	if max := uint64(len(r.data)-r.off) / uint64(elemBytes); c > max {
		r.failf("collection length %d exceeds remaining payload", c)
		return 0
	}
	return int(c)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.count(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.uint(8)
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (r *Reader) I64s() []int64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.uint(8))
	}
	return out
}

// Ints reads a length-prefixed []int (int64-encoded elements).
func (r *Reader) Ints() []int {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(r.uint(8)))
	}
	return out
}

// Bools reads a length-prefixed bit-packed []bool.
func (r *Reader) Bools() []bool {
	c := r.uint(4)
	if r.err != nil {
		return nil
	}
	nb := (c + 7) / 8
	if uint64(len(r.data)-r.off) < nb {
		r.failf("collection length %d exceeds remaining payload", c)
		return nil
	}
	packed := r.take(int(nb))
	out := make([]bool, c)
	for i := range out {
		out[i] = packed[i/8]&(1<<(i%8)) != 0
	}
	return out
}

// FileReader parses a whole container up front — header, framing, every
// section payload, every CRC, and the gzip stream checksum — so that by
// the time any component sees a Reader, the bytes it decodes are known
// intact.
type FileReader struct {
	order []string
	byID  map[string][]byte
}

// readUint pulls a little-endian integer of n bytes from src.
func readUint(src io.Reader, scratch *[8]byte, n int) (uint64, error) {
	for i := range scratch {
		scratch[i] = 0
	}
	if _, err := io.ReadFull(src, scratch[:n]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(scratch[:]), nil
}

// NewFileReader parses a checkpoint container from r.
func NewFileReader(r io.Reader) (*FileReader, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != FormatVersion {
		return nil, fmt.Errorf("checkpoint: container format version %d, want %d", v, FormatVersion)
	}
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening section stream: %w", err)
	}
	fr := &FileReader{byID: make(map[string][]byte)}
	var scratch [8]byte
	nsec, err := readUint(gz, &scratch, 4)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading section count: %w", err)
	}
	if nsec > maxSections {
		return nil, fmt.Errorf("checkpoint: section count %d exceeds limit %d", nsec, maxSections)
	}
	var total uint64
	for i := uint64(0); i < nsec; i++ {
		idLen, err := readUint(gz, &scratch, 2)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: reading section %d id: %w", i, err)
		}
		if idLen == 0 || idLen > maxIDLen {
			return nil, fmt.Errorf("checkpoint: section %d: invalid id length %d", i, idLen)
		}
		idBytes := make([]byte, idLen)
		if _, err := io.ReadFull(gz, idBytes); err != nil {
			return nil, fmt.Errorf("checkpoint: reading section %d id: %w", i, err)
		}
		id := string(idBytes)
		if _, dup := fr.byID[id]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate section %q", id)
		}
		plen, err := readUint(gz, &scratch, 8)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: section %q: reading length: %w", id, err)
		}
		if plen > maxSectionBytes {
			return nil, fmt.Errorf("checkpoint: section %q: length %d exceeds limit", id, plen)
		}
		total += plen
		if total > maxTotalBytes {
			return nil, fmt.Errorf("checkpoint: total section bytes exceed limit %d", uint64(maxTotalBytes))
		}
		wantCRC, err := readUint(gz, &scratch, 4)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: section %q: reading CRC: %w", id, err)
		}
		// CopyN into a growing buffer: a lying length costs only the
		// bytes the stream actually delivers.
		var pbuf bytes.Buffer
		if _, err := io.CopyN(&pbuf, gz, int64(plen)); err != nil {
			return nil, fmt.Errorf("checkpoint: section %q: reading payload: %w", id, err)
		}
		payload := pbuf.Bytes()
		if got := crc32.ChecksumIEEE(payload); got != uint32(wantCRC) {
			return nil, fmt.Errorf("checkpoint: section %q: CRC mismatch (corrupt payload)", id)
		}
		fr.order = append(fr.order, id)
		fr.byID[id] = payload
	}
	// Consume to EOF so gzip verifies its stream checksum, and reject
	// trailing garbage inside the stream.
	var one [1]byte
	switch _, err := io.ReadFull(gz, one[:]); err {
	case io.EOF:
	case nil:
		return nil, fmt.Errorf("checkpoint: trailing data after last section")
	default:
		return nil, fmt.Errorf("checkpoint: verifying stream checksum: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("checkpoint: closing section stream: %w", err)
	}
	return fr, nil
}

// Sections lists section IDs in file order.
func (fr *FileReader) Sections() []string {
	return append([]string(nil), fr.order...)
}

// Section returns a payload Reader for id, or an error if the section is
// absent.
func (fr *FileReader) Section(id string) (*Reader, error) {
	data, ok := fr.byID[id]
	if !ok {
		return nil, fmt.Errorf("checkpoint: missing section %q", id)
	}
	return &Reader{id: id, data: data}, nil
}
