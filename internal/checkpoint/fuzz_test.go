package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointReader feeds arbitrary bytes to the container parser and
// a section decoder: corrupt, truncated, or bit-flipped snapshots must
// return errors — never panic, never hang on a huge allocation, and
// never hand back a payload whose CRC does not match.
func FuzzCheckpointReader(f *testing.F) {
	// Seed with a valid container and a few near-misses.
	fw := NewFileWriter()
	_ = fw.Add("system", func(w *Writer) error {
		w.Version(1)
		w.U64(123456)
		w.U64s([]uint64{1, 2, 3, 4})
		w.Bools([]bool{true, false, true})
		w.String("meta")
		return w.Err()
	})
	_ = fw.Add("cache:llc", func(w *Writer) error {
		w.Version(1)
		w.Ints([]int{-1, 0, 7})
		return w.Err()
	})
	var valid bytes.Buffer
	if _, err := fw.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(Magic))
	f.Add(append([]byte(Magic), 1, 0, 0, 0))
	f.Add([]byte{})
	truncated := valid.Bytes()[:valid.Len()/2]
	f.Add(append([]byte(nil), truncated...))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := NewFileReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must be internally consistent: every listed
		// section resolvable, and decoding past the payload end must
		// surface an error through the sticky Reader, not a panic.
		for _, id := range fr.Sections() {
			r, err := fr.Section(id)
			if err != nil {
				t.Fatalf("listed section %q missing: %v", id, err)
			}
			r.Version(1)
			_ = r.U64()
			_ = r.U64s()
			_ = r.Bools()
			_ = r.Ints()
			_ = r.String()
			_ = r.Bool()
			_ = r.Close()
		}
	})
}
