// Package checkpoint is the deterministic snapshot/restore codec for the
// simulator: a self-describing, versioned binary container plus the
// Writer/Reader primitives stateful components use to serialise
// themselves.
//
// # Container layout
//
// A checkpoint file is an uncompressed 12-byte header followed by one
// gzip stream:
//
//	[8]byte  magic "BINGOCKP"
//	uint32   container format version (FormatVersion), little-endian
//	gzip {
//	    uint32 section count
//	    per section:
//	        uint16 id length, id bytes (e.g. "system", "cache:llc")
//	        uint64 payload length
//	        uint32 CRC-32 (IEEE) of the payload
//	        payload bytes
//	}
//
// Every multi-byte integer in the container and in section payloads is
// little-endian, matching the trace wire format. Corruption anywhere is
// detected before any component state is committed: the per-section CRC
// covers each payload, and the gzip stream's own checksum covers the
// framing between them (FileReader always consumes the stream to EOF so
// that checksum is verified).
//
// # Sections and schemas
//
// Each stateful component owns one section. Section payloads start with a
// component format version (Writer.Version) and then a fixed sequence of
// primitive fields; collections are encoded struct-of-arrays via the bulk
// ops (U64s, Ints, Bools, ...) so a section's field sequence — its schema
// — does not depend on how much state the component happens to hold. The
// Writer records that sequence as a token string ("v1 u64*12 bools ...")
// which the golden-schema test pins; any state-struct change that alters
// the wire format fails that test and forces a version bump. At load
// time, Reader.Close errors if a section was not consumed exactly, so a
// schema drift that survives the version check still fails loudly.
//
// # Determinism contract
//
// A checkpoint captures the complete simulation state at a clock
// boundary: restoring it into a freshly built identical System and
// continuing must be indistinguishable — deep-equal final stats,
// byte-identical output — from never having paused. State that is
// reconstructed rather than stored (trace source positions, RNG streams)
// is captured as replay counters; see the component LoadState
// implementations and DESIGN.md §7.
package checkpoint

import "errors"

// Magic identifies a checkpoint file; first 8 bytes, uncompressed.
const Magic = "BINGOCKP"

// FormatVersion is the container layout version. Bump it when the header
// or section framing changes; component payload changes bump the
// per-section version written by Writer.Version instead.
const FormatVersion uint32 = 1

// Hard caps keeping the reader safe on hostile input (fuzzing): no count
// read from the file may provoke an allocation larger than the data that
// actually backs it.
const (
	maxSections     = 4096
	maxIDLen        = 255
	maxSectionBytes = 1 << 28 // 256 MiB decompressed per section
	maxTotalBytes   = 1 << 29 // 512 MiB decompressed per checkpoint
)

// ErrBadMagic reports that the input does not start with Magic — it is
// not a checkpoint file at all.
var ErrBadMagic = errors.New("checkpoint: bad magic (not a checkpoint file)")

// Checkpointable is implemented by every stateful component that can
// serialise itself into one checkpoint section and restore from it.
//
// LoadState must be called on a freshly constructed component with the
// same configuration that produced the snapshot; implementations validate
// what they can (lengths, ranges, structural invariants) and return an
// error — leaving no silently-wrong state behind as far as practical —
// when the payload does not match.
type Checkpointable interface {
	SaveState(w *Writer) error
	LoadState(r *Reader) error
}
