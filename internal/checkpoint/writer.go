package checkpoint

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// Writer serialises one component's section payload. All methods append
// little-endian encodings to an in-memory buffer and record a schema
// token per field; errors are sticky and surfaced by Err (component
// SaveState implementations end with `return w.Err()`).
//
// Collections must use the bulk ops (U64s, Ints, Bools, ...) rather than
// loops over scalar ops, so the schema token sequence stays independent
// of the collection's current size.
type Writer struct {
	buf    bytes.Buffer
	schema []schemaToken
	err    error
}

// schemaToken is one run-length-compressed field token: "u64" written
// three times in a row is recorded as {tok: "u64", n: 3}.
type schemaToken struct {
	tok string
	n   int
}

func (w *Writer) tok(t string) {
	if n := len(w.schema); n > 0 && w.schema[n-1].tok == t {
		w.schema[n-1].n++
		return
	}
	w.schema = append(w.schema, schemaToken{tok: t, n: 1})
}

// Err returns the first error encountered, or nil.
func (w *Writer) Err() error { return w.err }

// fieldString renders the recorded schema, e.g. "v1 u64*12 bools u64s".
func (w *Writer) fieldString() string {
	var sb strings.Builder
	for i, t := range w.schema {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(t.tok)
		if t.n > 1 {
			fmt.Fprintf(&sb, "*%d", t.n)
		}
	}
	return sb.String()
}

func (w *Writer) putUint(v uint64, bytes int) {
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], v)
	w.buf.Write(scratch[:bytes])
}

// Version records the component's payload format version; it must be the
// first field of every section.
func (w *Writer) Version(v uint16) {
	w.tok(fmt.Sprintf("v%d", v))
	w.putUint(uint64(v), 2)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.tok("u8"); w.putUint(uint64(v), 1) }

// U32 writes a uint32.
func (w *Writer) U32(v uint32) { w.tok("u32"); w.putUint(uint64(v), 4) }

// U64 writes a uint64.
func (w *Writer) U64(v uint64) { w.tok("u64"); w.putUint(v, 8) }

// I64 writes an int64.
func (w *Writer) I64(v int64) { w.tok("i64"); w.putUint(uint64(v), 8) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.tok("i64"); w.putUint(uint64(int64(v)), 8) }

// Bool writes a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	w.tok("bool")
	b := uint64(0)
	if v {
		b = 1
	}
	w.putUint(b, 1)
}

// String writes a length-prefixed string.
func (w *Writer) String(v string) {
	w.tok("str")
	w.putUint(uint64(len(v)), 4)
	w.buf.WriteString(v)
}

// U64s writes a length-prefixed []uint64 (one field in the schema,
// whatever the length).
func (w *Writer) U64s(v []uint64) {
	w.tok("u64s")
	w.putUint(uint64(len(v)), 4)
	for _, x := range v {
		w.putUint(x, 8)
	}
}

// I64s writes a length-prefixed []int64.
func (w *Writer) I64s(v []int64) {
	w.tok("i64s")
	w.putUint(uint64(len(v)), 4)
	for _, x := range v {
		w.putUint(uint64(x), 8)
	}
}

// Ints writes a length-prefixed []int, each element as an int64.
func (w *Writer) Ints(v []int) {
	w.tok("i64s")
	w.putUint(uint64(len(v)), 4)
	for _, x := range v {
		w.putUint(uint64(int64(x)), 8)
	}
}

// Bools writes a length-prefixed, bit-packed []bool (LSB-first within
// each byte).
func (w *Writer) Bools(v []bool) {
	w.tok("bools")
	w.putUint(uint64(len(v)), 4)
	var cur byte
	for i, b := range v {
		if b {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			w.buf.WriteByte(cur)
			cur = 0
		}
	}
	if len(v)%8 != 0 {
		w.buf.WriteByte(cur)
	}
}

// SectionSchema is the golden-test view of one section: its ID and the
// run-length-compressed field token sequence its SaveState produced.
type SectionSchema struct {
	ID     string
	Fields string
}

// FileWriter accumulates sections and renders the container. Sections
// appear in the file (and in Schema) in Add order.
type FileWriter struct {
	ids      map[string]bool
	sections []fileSection
}

type fileSection struct {
	id      string
	payload []byte
	fields  string
}

// NewFileWriter returns an empty container builder.
func NewFileWriter() *FileWriter {
	return &FileWriter{ids: make(map[string]bool)}
}

// Add runs save against a fresh section Writer and appends the result
// under id. Section IDs must be unique, non-empty, and short.
func (fw *FileWriter) Add(id string, save func(*Writer) error) error {
	if id == "" || len(id) > maxIDLen {
		return fmt.Errorf("checkpoint: invalid section id %q", id)
	}
	if fw.ids[id] {
		return fmt.Errorf("checkpoint: duplicate section %q", id)
	}
	if len(fw.sections) >= maxSections {
		return fmt.Errorf("checkpoint: too many sections (max %d)", maxSections)
	}
	w := &Writer{}
	if err := save(w); err != nil {
		return fmt.Errorf("checkpoint: saving section %q: %w", id, err)
	}
	if err := w.Err(); err != nil {
		return fmt.Errorf("checkpoint: saving section %q: %w", id, err)
	}
	if w.buf.Len() > maxSectionBytes {
		return fmt.Errorf("checkpoint: section %q exceeds %d bytes", id, maxSectionBytes)
	}
	fw.ids[id] = true
	fw.sections = append(fw.sections, fileSection{id: id, payload: append([]byte(nil), w.buf.Bytes()...), fields: w.fieldString()})
	return nil
}

// Schema returns the per-section schemas in file order.
func (fw *FileWriter) Schema() []SectionSchema {
	out := make([]SectionSchema, len(fw.sections))
	for i, s := range fw.sections {
		out[i] = SectionSchema{ID: s.id, Fields: s.fields}
	}
	return out
}

// countingWriter tracks bytes written for WriteTo's contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo renders the container: header, then the gzip-framed sections.
func (fw *FileWriter) WriteTo(out io.Writer) (int64, error) {
	cw := &countingWriter{w: out}
	var hdr [12]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	gz := gzip.NewWriter(cw)
	var scratch [8]byte
	put := func(v uint64, n int) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := gz.Write(scratch[:n])
		return err
	}
	if err := put(uint64(len(fw.sections)), 4); err != nil {
		return cw.n, err
	}
	for _, s := range fw.sections {
		if err := put(uint64(len(s.id)), 2); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(gz, s.id); err != nil {
			return cw.n, err
		}
		if err := put(uint64(len(s.payload)), 8); err != nil {
			return cw.n, err
		}
		if err := put(uint64(crc32.ChecksumIEEE(s.payload)), 4); err != nil {
			return cw.n, err
		}
		if _, err := gz.Write(s.payload); err != nil {
			return cw.n, err
		}
	}
	if err := gz.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}
