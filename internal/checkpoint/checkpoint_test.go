package checkpoint

import (
	"bytes"
	"strings"
	"testing"
)

// buildTestContainer renders a two-section container exercising every
// primitive, returning the bytes.
func buildTestContainer(t *testing.T) []byte {
	t.Helper()
	fw := NewFileWriter()
	err := fw.Add("alpha", func(w *Writer) error {
		w.Version(1)
		w.U8(7)
		w.U32(0xDEADBEEF)
		w.U64(1 << 60)
		w.I64(-42)
		w.Int(-7)
		w.Bool(true)
		w.Bool(false)
		w.String("hello, checkpoint")
		w.U64s([]uint64{1, 2, 3})
		w.I64s([]int64{-1, 0, 1})
		w.Ints([]int{10, -10})
		w.Bools([]bool{true, false, true, true, false, true, false, false, true})
		return w.Err()
	})
	if err != nil {
		t.Fatalf("Add(alpha): %v", err)
	}
	err = fw.Add("beta", func(w *Writer) error {
		w.Version(3)
		w.U64s(nil)
		w.Bools(nil)
		return w.Err()
	})
	if err != nil {
		t.Fatalf("Add(beta): %v", err)
	}
	var buf bytes.Buffer
	if _, err := fw.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := buildTestContainer(t)
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewFileReader: %v", err)
	}
	if got := fr.Sections(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Sections() = %v", got)
	}
	r, err := fr.Section("alpha")
	if err != nil {
		t.Fatalf("Section(alpha): %v", err)
	}
	r.Version(1)
	if v := r.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<60 {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.Int(); v != -7 {
		t.Errorf("Int = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool pair mismatch")
	}
	if s := r.String(); s != "hello, checkpoint" {
		t.Errorf("String = %q", s)
	}
	if v := r.U64s(); len(v) != 3 || v[2] != 3 {
		t.Errorf("U64s = %v", v)
	}
	if v := r.I64s(); len(v) != 3 || v[0] != -1 {
		t.Errorf("I64s = %v", v)
	}
	if v := r.Ints(); len(v) != 2 || v[1] != -10 {
		t.Errorf("Ints = %v", v)
	}
	want := []bool{true, false, true, true, false, true, false, false, true}
	got := r.Bools()
	if len(got) != len(want) {
		t.Fatalf("Bools len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Bools[%d] = %v", i, got[i])
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close(alpha): %v", err)
	}

	r, err = fr.Section("beta")
	if err != nil {
		t.Fatalf("Section(beta): %v", err)
	}
	r.Version(3)
	if v := r.U64s(); len(v) != 0 {
		t.Errorf("empty U64s = %v", v)
	}
	if v := r.Bools(); len(v) != 0 {
		t.Errorf("empty Bools = %v", v)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close(beta): %v", err)
	}
}

func TestSchemaTokens(t *testing.T) {
	fw := NewFileWriter()
	err := fw.Add("s", func(w *Writer) error {
		w.Version(1)
		w.U64(0)
		w.U64(1)
		w.U64(2)
		w.Bools(nil)
		w.U64s(nil)
		w.Int(5)
		return w.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	sch := fw.Schema()
	if len(sch) != 1 || sch[0].ID != "s" {
		t.Fatalf("Schema = %+v", sch)
	}
	if want := "v1 u64*3 bools u64s i64"; sch[0].Fields != want {
		t.Errorf("Fields = %q, want %q", sch[0].Fields, want)
	}
}

func TestVersionMismatch(t *testing.T) {
	data := buildTestContainer(t)
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r, err := fr.Section("beta")
	if err != nil {
		t.Fatal(err)
	}
	r.Version(1) // section was written as version 3
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "version") {
		t.Errorf("expected version mismatch, got %v", r.Err())
	}
}

func TestCloseDetectsUnconsumed(t *testing.T) {
	data := buildTestContainer(t)
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r, err := fr.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	r.Version(1)
	if err := r.Close(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("Close on partially consumed section: %v", err)
	}
}

func TestStickyTruncation(t *testing.T) {
	r := &Reader{id: "t", data: []byte{1, 0}}
	r.Version(1)
	_ = r.U64() // only 0 bytes left
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	if v := r.U32(); v != 0 {
		t.Errorf("post-error read = %d, want 0", v)
	}
}

func TestBoundedCollectionLength(t *testing.T) {
	// A collection claiming 2^31 elements with 4 bytes of backing data
	// must error, not allocate.
	r := &Reader{id: "t", data: []byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4}}
	if v := r.U64s(); v != nil {
		t.Errorf("U64s = %v", v)
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "exceeds") {
		t.Errorf("err = %v", r.Err())
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	fw := NewFileWriter()
	save := func(w *Writer) error { w.Version(1); return w.Err() }
	if err := fw.Add("dup", save); err != nil {
		t.Fatal(err)
	}
	if err := fw.Add("dup", save); err == nil {
		t.Error("duplicate Add accepted")
	}
}

func TestMissingSection(t *testing.T) {
	data := buildTestContainer(t)
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Section("gamma"); err == nil {
		t.Error("missing section lookup succeeded")
	}
}

func TestBadMagic(t *testing.T) {
	data := buildTestContainer(t)
	data[0] ^= 0xFF
	if _, err := NewFileReader(bytes.NewReader(data)); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestEveryBitFlipDetectedOrHarmless(t *testing.T) {
	data := buildTestContainer(t)
	orig, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at every position across the whole file — header,
	// gzip framing, and compressed payload — and require each mutant to
	// either be rejected or parse to byte-identical sections. The
	// container header is covered by the magic and version checks, the
	// stream by gzip's checksum, and each payload by its section CRC;
	// the only undetectable flips live in gzip header metadata (mtime,
	// OS byte), which carry no state.
	for pos := 0; pos < len(data); pos++ {
		for _, bit := range []uint{0, 3, 7} {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << bit
			fr, err := NewFileReader(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			ids := fr.Sections()
			if len(ids) != len(orig.Sections()) {
				t.Fatalf("bit flip at byte %d bit %d: section list changed silently", pos, bit)
			}
			for _, id := range ids {
				a, errA := orig.Section(id)
				b, errB := fr.Section(id)
				if errA != nil || errB != nil || !bytes.Equal(a.data, b.data) {
					t.Fatalf("bit flip at byte %d bit %d: section %q changed silently", pos, bit, id)
				}
			}
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	data := buildTestContainer(t)
	for _, n := range []int{0, 5, 11, 12, 13, len(data) / 2, len(data) - 1} {
		if _, err := NewFileReader(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation to %d bytes went undetected", n)
		}
	}
}
