// Command traceinfo prints the offline statistics of a recorded trace or
// of a synthetic workload stream: instruction mix, dependence density,
// footprint, and the region-fill distribution that determines how much a
// spatial prefetcher can possibly cover.
//
// Usage:
//
//	traceinfo -trace run.trc
//	traceinfo -workload em3d -n 500000
//	traceinfo -kernel soplex -n 200000 -top 5
package main

import (
	"flag"
	"fmt"
	"os"

	"bingo/internal/trace"
	"bingo/internal/workloads"
)

func main() {
	var (
		traceFlag    = flag.String("trace", "", "trace file to analyse")
		workloadFlag = flag.String("workload", "", "workload name to analyse (core 0)")
		kernelFlag   = flag.String("kernel", "", "SPEC-like kernel name to analyse")
		nFlag        = flag.Int("n", 1_000_000, "records to analyse for generated streams")
		seedFlag     = flag.Int64("seed", 1, "generator seed")
		topFlag      = flag.Int("top", 10, "how many hot PCs to list")
	)
	flag.Parse()

	src, label, cleanup, err := buildSource(*traceFlag, *workloadFlag, *kernelFlag, *seedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(2)
	}

	max := *nFlag
	if *traceFlag != "" {
		max = 0 // whole file
	}
	recs := trace.Collect(src, max)
	if cleanup != nil {
		// Close the trace reader once fully consumed: a close error here
		// (e.g. a truncated gzip stream) means the statistics below were
		// computed from an incomplete record set.
		if err := cleanup(); err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: closing trace: %v\n", err)
			os.Exit(1)
		}
	}
	summary := trace.Analyze(trace.NewSliceSource(recs), 0)
	fmt.Printf("source: %s\n%s", label, summary)

	if *topFlag > 0 {
		fmt.Printf("hot PCs:\n")
		for _, pc := range trace.TopPCs(recs, *topFlag) {
			fmt.Printf("  %#8x  %8d accesses (%.1f%%)\n",
				uint64(pc.PC), pc.Count, float64(pc.Count)/float64(summary.Records)*100)
		}
	}
}

// buildSource resolves the requested stream. For file-backed traces the
// returned cleanup closes the decompressor (if any) and the file; it is
// nil for generated streams.
func buildSource(tracePath, workload, kernel string, seed int64) (trace.Source, string, func() error, error) {
	set := 0
	for _, s := range []string{tracePath, workload, kernel} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, "", nil, fmt.Errorf("exactly one of -trace, -workload, -kernel is required")
	}
	switch {
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, "", nil, err
		}
		r, closer, err := trace.NewAutoReader(f)
		if err != nil {
			_ = f.Close() // best-effort: the reader error wins
			return nil, "", nil, err
		}
		cleanup := func() error {
			var first error
			if closer != nil {
				first = closer.Close()
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			return first
		}
		return r, tracePath, cleanup, nil
	case kernel != "":
		src, ok := workloads.KernelByName(kernel, seed, 0)
		if !ok {
			return nil, "", nil, fmt.Errorf("unknown kernel %q (have %v)", kernel, workloads.SpecKernelNames())
		}
		return src, "kernel " + kernel, nil, nil
	default:
		w, ok := workloads.ByName(workload)
		if !ok {
			return nil, "", nil, fmt.Errorf("unknown workload %q (have %v)", workload, workloads.Names())
		}
		return w.Sources(1, seed)[0], "workload " + workload, nil, nil
	}
}
