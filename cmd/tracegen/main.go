// Command tracegen materialises a synthetic workload's memory-access
// stream into the binary trace format, so identical traces can be
// replayed (bingosim -trace) or inspected by external tools.
//
// Usage:
//
//	tracegen -workload em3d -core 0 -n 1000000 -o em3d.trc
//	tracegen -kernel lbm -n 500000 -o lbm.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"bingo/internal/trace"
	"bingo/internal/workloads"
)

func main() {
	var (
		workloadFlag = flag.String("workload", "", "workload name (one of workloads.All)")
		kernelFlag   = flag.String("kernel", "", "single SPEC-like kernel name instead of a workload")
		coreFlag     = flag.Int("core", 0, "which core's stream to record")
		nFlag        = flag.Int("n", 1_000_000, "number of records")
		seedFlag     = flag.Int64("seed", 1, "generator seed")
		outFlag      = flag.String("o", "out.trc", "output file")
		gzFlag       = flag.Bool("gz", false, "gzip-compress the output")
	)
	flag.Parse()

	src, err := buildSource(*workloadFlag, *kernelFlag, *coreFlag, *seedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(2)
	}

	f, err := os.Create(*outFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	var w interface {
		Write(trace.Record) error
		Close() error
	}
	if *gzFlag {
		w, err = trace.NewGzipWriter(f, uint64(*nFlag))
	} else {
		w, err = trace.NewWriter(f, uint64(*nFlag))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	var instr uint64
	for i := 0; i < *nFlag; i++ {
		rec, ok := src.Next()
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: source ended after %d records\n", i)
			os.Exit(1)
		}
		instr += rec.Instructions()
		if err := w.Write(rec); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	}
	if err := w.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	// The trace writer buffers; only a successful file close proves the
	// records reached disk. (Early os.Exit paths above leak the handle to
	// process teardown, which is fine — the output is bad either way.)
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d instructions) to %s\n", *nFlag, instr, *outFlag)
}

func buildSource(workload, kernel string, core int, seed int64) (trace.Source, error) {
	switch {
	case workload != "" && kernel != "":
		return nil, fmt.Errorf("use either -workload or -kernel, not both")
	case kernel != "":
		src, ok := workloads.KernelByName(kernel, seed, core)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (have %v)", kernel, workloads.SpecKernelNames())
		}
		return src, nil
	case workload != "":
		w, ok := workloads.ByName(workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (have %v)", workload, workloads.Names())
		}
		sources := w.Sources(core+1, seed)
		return sources[core], nil
	default:
		return nil, fmt.Errorf("one of -workload or -kernel is required")
	}
}
