// Command simlint runs the simulator's invariant suite — detlint,
// unitlint, contractlint, paramlint, errlint, statelint, sharelint,
// sanlint, hotlint, purelint, locklint — over the repository. It is the
// project-specific complement to go vet: the analyzers encode contracts
// (determinism, address-unit safety, concurrency documentation,
// checkpoint completeness, sanitizer gating, hot-path allocation
// discipline, telemetry purity, lock ordering) that generic tooling
// cannot know about.
//
// Usage:
//
//	simlint [-only name,name] [-json] [-sarif] [-factcache dir] [-tests] [-san] [-unused-suppressions] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. By default
// the suite analyzes test files too (-tests) and runs a second pass under
// the `san` build tag (-san) so the sanitizer's gated files are covered;
// disable either for a faster partial run. -json emits a structured
// report that includes suppressed findings; -sarif emits a SARIF 2.1.0
// log for code-scanning upload; -factcache makes runs incremental by
// replaying packages whose import closure is unchanged from a cache
// directory; -unused-suppressions reports
// stale //lint: directives as findings. Exit status is 0 when no
// actionable findings are reported, 1 on findings, 2 on usage or load
// errors. Suppress a single finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above it, or a whole file with
// //lint:file-ignore. The reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bingo/internal/lint"
	"bingo/internal/lint/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (includes suppressed findings, marked)")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 for code-scanning upload")
	tests := flag.Bool("tests", true, "also analyze _test.go compilation units")
	san := flag.Bool("san", true, "also analyze the -tags=san build configuration")
	unused := flag.Bool("unused-suppressions", false, "report //lint: directives that no longer suppress anything")
	factcache := flag.String("factcache", "", "directory for the incremental fact cache (replays unchanged packages)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-only name,name] [-json] [-sarif] [-factcache dir] [-tests] [-san] [-unused-suppressions] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-13s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	n, err := lint.Check(os.Stdout, root, patterns, lint.Options{
		Analyzers:          suite,
		Tests:              *tests,
		San:                *san,
		JSON:               *jsonOut,
		SARIF:              *sarifOut,
		UnusedSuppressions: *unused,
		FactCache:          *factcache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
