// Command bingosim runs one workload under one prefetcher on the
// simulated four-core system and prints the measured results: per-core
// IPC, LLC statistics, coverage/accuracy, and DRAM behaviour.
//
// Usage:
//
//	bingosim -workload em3d -prefetcher bingo
//	bingosim -workload Mix1 -prefetcher none -measure 2000000
//	bingosim -trace run.trc -prefetcher sms   # replay a recorded trace
//	bingosim -list                            # show workloads & prefetchers
package main

import (
	"flag"
	"fmt"
	"os"

	"bingo/internal/harness"
	"bingo/internal/san"
	"bingo/internal/system"
	"bingo/internal/trace"
	"bingo/internal/workloads"
)

func main() {
	var (
		workloadFlag = flag.String("workload", "em3d", "workload name (see -list)")
		pfFlag       = flag.String("prefetcher", "bingo", "prefetcher name (see -list)")
		traceFlag    = flag.String("trace", "", "replay a recorded trace file on every core instead of a workload")
		warmupFlag   = flag.Uint64("warmup", 0, "override warm-up instructions per core")
		measureFlag  = flag.Uint64("measure", 0, "override measured instructions per core")
		seedFlag     = flag.Int64("seed", 1, "workload generator seed")
		listFlag     = flag.Bool("list", false, "list workloads and prefetchers, then exit")
		compareFlag  = flag.Bool("compare", false, "also run the no-prefetcher baseline and report speedup/coverage")
		sanFlag      = flag.Bool("san", san.Compiled, "runtime invariant checking (needs a -tags=san build)")
	)
	flag.Parse()

	if *sanFlag && !san.Compiled {
		fmt.Fprintln(os.Stderr, "bingosim: -san requires a binary built with -tags=san")
		os.Exit(2)
	}
	san.SetEnabled(*sanFlag)

	if *listFlag {
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			fmt.Printf("  %-12s %s\n", w.Name, w.Description)
		}
		fmt.Printf("prefetchers: %v\n", harness.PrefetcherNames())
		return
	}

	opts := harness.DefaultRunOptions()
	opts.Seed = *seedFlag
	if *warmupFlag > 0 {
		opts.System.WarmupInstr = *warmupFlag
	}
	if *measureFlag > 0 {
		opts.System.MeasureInstr = *measureFlag
	}

	var run func(prefetcher string) (system.Results, error)
	var label string
	if *traceFlag != "" {
		label = *traceFlag
		run = func(prefetcher string) (system.Results, error) {
			return replayTrace(*traceFlag, prefetcher, opts)
		}
	} else {
		w, ok := workloads.ByName(*workloadFlag)
		if !ok {
			fmt.Fprintf(os.Stderr, "bingosim: unknown workload %q (try -list)\n", *workloadFlag)
			os.Exit(2)
		}
		label = w.Name
		run = func(prefetcher string) (system.Results, error) {
			return harness.RunNamed(w, prefetcher, opts)
		}
	}

	res, err := run(*pfFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bingosim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("workload=%s\n%s", label, res)

	if *compareFlag && *pfFlag != "none" {
		base, err := run("none")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bingosim: baseline: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("baseline: throughput=%.3f mpki=%.2f\n", base.Throughput(), base.LLCMPKI())
		fmt.Printf("speedup=%+.1f%% coverage=%.1f%% overprediction=%.1f%%\n",
			(res.Throughput()/base.Throughput()-1)*100,
			res.CoverageVsBaseline(base.LLC.Misses)*100,
			res.Overprediction(base.LLC.Misses)*100)
	}
}

// replayTrace runs the same recorded trace on every core.
func replayTrace(path, prefetcher string, opts harness.RunOptions) (system.Results, error) {
	factory, err := harness.FactoryByName(prefetcher)
	if err != nil {
		return system.Results{}, err
	}
	sources := make([]trace.Source, opts.System.NumCores)
	files := make([]*os.File, 0, opts.System.NumCores)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for i := range sources {
		f, err := os.Open(path)
		if err != nil {
			return system.Results{}, err
		}
		files = append(files, f)
		r, closer, err := trace.NewAutoReader(f)
		if err != nil {
			return system.Results{}, err
		}
		if closer != nil {
			defer closer.Close()
		}
		sources[i] = r
	}
	sys, err := system.New(opts.System, sources, factory)
	if err != nil {
		return system.Results{}, err
	}
	return sys.Run(), nil
}
