// Command bingosim runs one workload under one prefetcher on the
// simulated four-core system and prints the measured results: per-core
// IPC, LLC statistics, coverage/accuracy, and DRAM behaviour.
//
// Usage:
//
//	bingosim -workload em3d -prefetcher bingo
//	bingosim -workload Mix1 -prefetcher none -measure 2000000
//	bingosim -trace run.trc -prefetcher sms   # replay a recorded trace
//	bingosim -list                            # show workloads & prefetchers
//
// Checkpointing:
//
//	bingosim -workload em3d -checkpoint-out warm.ckpt     # save at end of warm-up
//	bingosim -workload em3d -checkpoint-out run.ckpt -checkpoint-every 100000
//	bingosim -workload em3d -resume run.ckpt              # continue from a checkpoint
//
// Telemetry (pure observers: the printed results are identical either way):
//
//	bingosim -workload em3d -telemetry-out run.json       # epoch series + lifecycle as JSON
//	bingosim -workload em3d -telemetry-csv run.csv        # epoch series as CSV
//	bingosim -workload em3d -trace-out run.trace.json     # Chrome trace_event (chrome://tracing)
//	bingosim -workload em3d -debug-addr 127.0.0.1:6060    # pprof + expvar while running
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bingo/internal/harness"
	"bingo/internal/san"
	"bingo/internal/system"
	"bingo/internal/telemetry"
	"bingo/internal/trace"
	"bingo/internal/workloads"
)

func main() {
	var (
		workloadFlag = flag.String("workload", "em3d", "workload name (see -list)")
		pfFlag       = flag.String("prefetcher", "bingo", "prefetcher name (see -list)")
		traceFlag    = flag.String("trace", "", "replay a recorded trace file on every core instead of a workload")
		warmupFlag   = flag.Uint64("warmup", 0, "override warm-up instructions per core")
		measureFlag  = flag.Uint64("measure", 0, "override measured instructions per core")
		seedFlag     = flag.Int64("seed", 1, "workload generator seed")
		listFlag     = flag.Bool("list", false, "list workloads and prefetchers, then exit")
		compareFlag  = flag.Bool("compare", false, "also run the no-prefetcher baseline and report speedup/coverage")
		sanFlag      = flag.Bool("san", san.Compiled, "runtime invariant checking (needs a -tags=san build)")
		ckptOutFlag  = flag.String("checkpoint-out", "", "save a checkpoint to this file: at end of warm-up, or periodically with -checkpoint-every")
		ckptEvery    = flag.Uint64("checkpoint-every", 0, "with -checkpoint-out: overwrite the checkpoint every N cycles while running to completion")
		resumeFlag   = flag.String("resume", "", "restore simulation state from a checkpoint file before running (same workload, prefetcher, and configuration required)")
		telJSONFlag  = flag.String("telemetry-out", "", "write the epoch time-series and prefetch lifecycle as a JSON document to this file")
		telCSVFlag   = flag.String("telemetry-csv", "", "write the epoch time-series as CSV to this file")
		traceOutFlag = flag.String("trace-out", "", "write the epoch time-series as a Chrome trace_event file (chrome://tracing, Perfetto) to this file")
		epochFlag    = flag.Uint64("epoch", 0, "telemetry sampling period in cycles (0 = default)")
		debugFlag    = flag.String("debug-addr", "", "serve net/http/pprof, expvar, and live metrics on this address while running")
		engineFlag   = flag.String("engine", "lockstep", "simulation engine: lockstep (reference) or event (cycle-skipping; identical results, faster on memory-bound workloads)")
		frontFlag    = flag.String("frontend", "serial", "per-core frontend execution: serial (reference) or parallel (per-core goroutines with a deterministic LLC barrier; identical results, faster at GOMAXPROCS>1)")
		coresFlag    = flag.Int("cores", 0, "override the core count (0 = Table I's 4); LLC capacity, DRAM channels, and memory scale with it")
	)
	flag.Parse()

	engine, err := system.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bingosim: %v\n", err)
		os.Exit(2)
	}
	frontend, err := system.ParseFrontend(*frontFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bingosim: %v\n", err)
		os.Exit(2)
	}

	if *sanFlag && !san.Compiled {
		fmt.Fprintln(os.Stderr, "bingosim: -san requires a binary built with -tags=san")
		os.Exit(2)
	}
	san.SetEnabled(*sanFlag)

	if *listFlag {
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			fmt.Printf("  %-12s %s\n", w.Name, w.Description)
		}
		fmt.Printf("prefetchers: %v\n", harness.PrefetcherNames())
		return
	}
	if *ckptEvery > 0 && *ckptOutFlag == "" {
		fmt.Fprintln(os.Stderr, "bingosim: -checkpoint-every requires -checkpoint-out")
		os.Exit(2)
	}
	if *resumeFlag != "" && *ckptOutFlag != "" && *ckptEvery == 0 {
		// An end-of-warm-up save needs the system still in its warm-up
		// phase, which a resumed run may already have left.
		fmt.Fprintln(os.Stderr, "bingosim: -resume with -checkpoint-out needs -checkpoint-every (the resumed state may be past warm-up)")
		os.Exit(2)
	}

	opts := harness.DefaultRunOptions()
	opts.Seed = *seedFlag
	opts.Engine = engine
	opts.Frontend = frontend
	if *coresFlag < 0 {
		fmt.Fprintf(os.Stderr, "bingosim: -cores %d: core count must be positive (0 = Table I default)\n", *coresFlag)
		os.Exit(2)
	}
	if *coresFlag > 0 {
		opts.System = opts.System.WithCores(*coresFlag)
	}
	if *warmupFlag > 0 {
		opts.System.WarmupInstr = *warmupFlag
	}
	if *measureFlag > 0 {
		opts.System.MeasureInstr = *measureFlag
	}

	var build func(prefetcher string) (*system.System, func() error, error)
	var label string
	if *traceFlag != "" {
		label = *traceFlag
		build = func(prefetcher string) (*system.System, func() error, error) {
			return buildTraceSystem(*traceFlag, prefetcher, opts)
		}
	} else {
		w, ok := workloads.ByName(*workloadFlag)
		if !ok {
			fmt.Fprintf(os.Stderr, "bingosim: unknown workload %q (try -list)\n", *workloadFlag)
			os.Exit(2)
		}
		label = w.Name
		build = func(prefetcher string) (*system.System, func() error, error) {
			factory, err := harness.FactoryByName(prefetcher)
			if err != nil {
				return nil, nil, err
			}
			sys, err := harness.BuildSystem(w, factory, opts)
			return sys, nil, err
		}
	}

	// Telemetry is a pure observer: the collector attaches before the
	// simulation (and before any -resume restore, so checkpointed
	// collector state reloads or resyncs correctly) and the printed
	// results are byte-identical with or without it.
	var tel *telemetry.Collector
	if *telJSONFlag != "" || *telCSVFlag != "" || *traceOutFlag != "" || *debugFlag != "" {
		tel = telemetry.NewCollector(*epochFlag)
		tel.Workload = label
		tel.Prefetcher = *pfFlag
	}
	if *debugFlag != "" {
		srv, err := telemetry.StartDebugServer(*debugFlag, tel.Registry())
		if err != nil {
			fmt.Fprintf(os.Stderr, "bingosim: %v\n", err)
			os.Exit(1)
		}
		// The process is exiting anyway when this runs; a close error on the
		// debug listener has no one left to act on it.
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "bingosim: debug server on http://%s/debug/\n", srv.Addr)
	}

	run := func(prefetcher string, checkpointed bool, tel *telemetry.Collector) (system.Results, error) {
		sys, cleanup, err := build(prefetcher)
		if err != nil {
			return system.Results{}, err
		}
		if cleanup != nil {
			defer func() {
				if cerr := cleanup(); cerr != nil {
					fmt.Fprintf(os.Stderr, "bingosim: closing trace: %v\n", cerr)
				}
			}()
		}
		if tel != nil {
			sys.EnableTelemetry(tel)
		}
		if !checkpointed {
			return sys.Run(), nil
		}
		return execute(sys, *resumeFlag, *ckptOutFlag, *ckptEvery)
	}

	// With -compare the baseline runs first so its miss count can feed
	// the main run's report (coverage and overprediction vs baseline).
	// The baseline always runs cold and unobserved: a checkpoint records
	// one exact machine, and the no-prefetcher baseline is a different
	// one.
	var baseMisses uint64
	var base system.Results
	compare := *compareFlag && *pfFlag != "none"
	if compare {
		var err error
		base, err = run("none", false, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bingosim: baseline: %v\n", err)
			os.Exit(1)
		}
		baseMisses = base.LLC.Misses
	}

	res, err := run(*pfFlag, true, tel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bingosim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("workload=%s\n%s", label, res.StringWithBaseline(baseMisses))

	if compare {
		fmt.Printf("baseline: throughput=%.3f mpki=%.2f\n", base.Throughput(), base.LLCMPKI())
		fmt.Printf("speedup=%+.1f%% coverage=%.1f%% overprediction=%.1f%%\n",
			(res.Throughput()/base.Throughput()-1)*100,
			res.CoverageVsBaseline(baseMisses)*100,
			res.Overprediction(baseMisses)*100)
	}

	if err := writeTelemetry(tel, *telJSONFlag, *telCSVFlag, *traceOutFlag); err != nil {
		fmt.Fprintf(os.Stderr, "bingosim: %v\n", err)
		os.Exit(1)
	}
}

// writeTelemetry exports the collected series to whichever output files
// were requested.
func writeTelemetry(tel *telemetry.Collector, jsonPath, csvPath, tracePath string) error {
	if tel == nil {
		return nil
	}
	write := func(path string, fn func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		writeErr := fn(f)
		closeErr := f.Close()
		if writeErr != nil {
			return fmt.Errorf("writing %s: %w", path, writeErr)
		}
		if closeErr != nil {
			return fmt.Errorf("writing %s: %w", path, closeErr)
		}
		return nil
	}
	if err := write(jsonPath, tel.WriteJSON); err != nil {
		return err
	}
	if err := write(csvPath, tel.WriteCSV); err != nil {
		return err
	}
	return write(tracePath, tel.WriteChromeTrace)
}

// execute runs sys to completion, applying the checkpoint flags: restore
// from resume first, then either save once at the end of warm-up
// (ckptOut alone) or overwrite ckptOut every `every` cycles while the
// run completes. The printed results are identical with or without
// checkpointing — saving is a pure observer at the cycle boundary.
func execute(sys *system.System, resume, ckptOut string, every uint64) (system.Results, error) {
	if resume != "" {
		f, err := os.Open(resume)
		if err != nil {
			return system.Results{}, err
		}
		loadErr := sys.LoadCheckpoint(f)
		closeErr := f.Close()
		if loadErr != nil {
			return system.Results{}, fmt.Errorf("resuming from %s: %w", resume, loadErr)
		}
		if closeErr != nil {
			return system.Results{}, closeErr
		}
	}

	switch {
	case ckptOut != "" && every == 0:
		sys.RunWarmup()
		if err := saveCheckpointFile(sys, ckptOut); err != nil {
			return system.Results{}, err
		}
		return sys.Run(), nil
	case ckptOut != "":
		var hookErr error
		next := sys.Clock() + every
		sys.SetAdvanceHook(func(cycle uint64) bool {
			if cycle < next {
				return false
			}
			for next <= cycle {
				next += every
			}
			if err := saveCheckpointFile(sys, ckptOut); err != nil {
				hookErr = err
				return true // pause: abort the run on a failed save
			}
			return false
		})
		res, paused := sys.RunResumable()
		if paused {
			return system.Results{}, hookErr
		}
		return res, nil
	default:
		return sys.Run(), nil
	}
}

// saveCheckpointFile writes sys's checkpoint atomically: a temp file in
// the target directory, renamed over path only once fully written, so an
// interrupted save never leaves a truncated checkpoint behind.
func saveCheckpointFile(sys *system.System, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	saveErr := sys.SaveCheckpoint(tmp)
	closeErr := tmp.Close()
	if saveErr == nil {
		saveErr = closeErr
	}
	if saveErr == nil {
		saveErr = os.Rename(tmp.Name(), path)
	}
	if saveErr != nil {
		_ = os.Remove(tmp.Name()) // best-effort temp cleanup: the save error wins
		return fmt.Errorf("saving checkpoint %s: %w", path, saveErr)
	}
	return nil
}

// buildTraceSystem constructs a system replaying the same recorded trace
// on every core. The returned cleanup closes the trace readers; its
// error is reported (the files are read-only, so a close failure cannot
// lose data, but it should not pass silently).
func buildTraceSystem(path, prefetcher string, opts harness.RunOptions) (*system.System, func() error, error) {
	factory, err := harness.FactoryByName(prefetcher)
	if err != nil {
		return nil, nil, err
	}
	sources := make([]trace.Source, opts.System.NumCores)
	var closers []func() error
	cleanup := func() error {
		var first error
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for i := range sources {
		f, err := os.Open(path)
		if err != nil {
			_ = cleanup() // best-effort: the open error wins
			return nil, nil, err
		}
		closers = append(closers, f.Close)
		r, closer, err := trace.NewAutoReader(f)
		if err != nil {
			_ = cleanup() // best-effort: the reader error wins
			return nil, nil, err
		}
		if closer != nil {
			closers = append(closers, closer.Close)
		}
		sources[i] = r
	}
	sys, err := system.New(opts.System, sources, factory)
	if err != nil {
		_ = cleanup() // best-effort: the construction error wins
		return nil, nil, err
	}
	sys.SetEngine(opts.Engine)
	sys.SetFrontend(opts.Frontend)
	return sys, cleanup, nil
}
