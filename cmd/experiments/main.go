// Command experiments regenerates every table and figure of the Bingo
// paper's evaluation (HPCA 2019) on the simulated system, plus the extra
// ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments -exp all              # everything (slow: the full matrix)
//	experiments -exp fig8             # one artefact
//	experiments -exp fig7,fig8,fig9   # several (they share runs)
//	experiments -fast                 # reduced instruction budgets
//	experiments -exp all -fast -j 8   # warm the run matrix on 8 workers
//	experiments -warm-reuse .warm     # reuse end-of-warm-up checkpoints
//	experiments -telemetry out/       # export per-cell epoch series
//	experiments -debug-addr :6060     # pprof/expvar while running
//
// Artefact names: table1 table2 fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10
// timeliness ablate-vote ablate-region ablate-sharing ablate-queue
// ablate-bandwidth ablate-level ablate-tags extras seeds.
//
// The rendered tables on stdout are byte-identical for every -j value
// (and across repeated runs); timings and the per-cell run report go to
// stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bingo/internal/harness"
	"bingo/internal/san"
	"bingo/internal/system"
	"bingo/internal/telemetry"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment list or 'all'")
		fastFlag   = flag.Bool("fast", false, "use reduced instruction budgets")
		seedFlag   = flag.Int64("seed", 1, "workload generator seed")
		formatFlag = flag.String("format", "text", "output format: text, csv, or markdown")
		jobsFlag   = flag.Int("j", 0, "simulation workers; 1 = sequential, 0 = GOMAXPROCS")
		quietFlag  = flag.Bool("quiet", false, "suppress the stderr run report")
		sanFlag    = flag.Bool("san", san.Compiled, "runtime invariant checking (needs a -tags=san build)")
		warmFlag   = flag.String("warm-reuse", "", "cache end-of-warm-up checkpoints in this directory and restore them on later runs (tables stay byte-identical)")
		telFlag    = flag.String("telemetry", "", "export each cell's epoch time-series (JSON + Chrome trace) into this directory")
		epochFlag  = flag.Uint64("epoch", 0, "telemetry sampling period in cycles (0 = default)")
		debugFlag  = flag.String("debug-addr", "", "serve net/http/pprof, expvar, and live progress counters on this address while running")
		engineFlag = flag.String("engine", "lockstep", "simulation engine: lockstep (reference) or event (cycle-skipping; identical tables, faster on memory-bound workloads)")
	)
	flag.Parse()

	engine, err := system.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	if *sanFlag && !san.Compiled {
		fmt.Fprintln(os.Stderr, "experiments: -san requires a binary built with -tags=san")
		os.Exit(2)
	}
	san.SetEnabled(*sanFlag)

	opts := harness.DefaultRunOptions()
	if *fastFlag {
		opts = harness.FastRunOptions()
	}
	opts.Seed = *seedFlag
	opts.Engine = engine

	var report io.Writer = os.Stderr
	if *quietFlag {
		report = nil
	}
	var debugReg *telemetry.Registry
	if *debugFlag != "" {
		debugReg = telemetry.NewRegistry()
		srv, err := telemetry.StartDebugServer(*debugFlag, debugReg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		// The process is exiting anyway when this runs; a close error on the
		// debug listener has no one left to act on it.
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "experiments: debug server on http://%s/debug/\n", srv.Addr)
	}
	cfg := harness.SuiteConfig{
		Experiments:    strings.Split(*expFlag, ","),
		Opts:           opts,
		Jobs:           *jobsFlag,
		Format:         *formatFlag,
		BudgetLabel:    budgetName(*fastFlag),
		Report:         report,
		WarmDir:        *warmFlag,
		TelemetryDir:   *telFlag,
		TelemetryEpoch: *epochFlag,
		Debug:          debugReg,
	}
	if err := harness.RunSuite(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		var unknown harness.UnknownExperimentError
		if errors.As(err, &unknown) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func budgetName(fast bool) string {
	if fast {
		return "fast"
	}
	return "full"
}
