// Command experiments regenerates every table and figure of the Bingo
// paper's evaluation (HPCA 2019) on the simulated system, plus the extra
// ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments -exp all              # everything (slow: the full matrix)
//	experiments -exp fig8             # one artefact
//	experiments -exp fig7,fig8,fig9   # several (they share runs)
//	experiments -fast                 # reduced instruction budgets
//	experiments -exp all -fast -j 8   # warm the run matrix on 8 workers
//	experiments -warm-reuse .warm     # reuse end-of-warm-up checkpoints
//	experiments -telemetry out/       # export per-cell epoch series
//	experiments -debug-addr :6060     # pprof/expvar while running
//
// Distributed sweeps (see DESIGN.md §11): one coordinator serves the job
// queue, any number of workers — on this or other machines — lease and
// run cells; the rendered tables are byte-identical to a local run.
//
//	experiments -serve :8080 -exp all          # coordinator: plan + serve + render
//	experiments -worker http://host:8080 -j 4  # worker: lease and simulate jobs
//
// Artefact names: table1 table2 fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10
// timeliness ablate-vote ablate-region ablate-sharing ablate-queue
// ablate-bandwidth ablate-level ablate-tags extras seeds.
//
// The rendered tables on stdout are byte-identical for every -j value
// (and across repeated runs); timings and the per-cell run report go to
// stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"bingo/internal/harness"
	"bingo/internal/san"
	"bingo/internal/sweep"
	"bingo/internal/system"
	"bingo/internal/telemetry"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment list or 'all'")
		fastFlag   = flag.Bool("fast", false, "use reduced instruction budgets")
		seedFlag   = flag.Int64("seed", 1, "workload generator seed")
		formatFlag = flag.String("format", "text", "output format: text, csv, or markdown")
		jobsFlag   = flag.Int("j", 0, "simulation workers; 1 = sequential, 0 = GOMAXPROCS")
		quietFlag  = flag.Bool("quiet", false, "suppress the stderr run report")
		sanFlag    = flag.Bool("san", san.Compiled, "runtime invariant checking (needs a -tags=san build)")
		warmFlag   = flag.String("warm-reuse", "", "cache end-of-warm-up checkpoints in this directory and restore them on later runs (tables stay byte-identical)")
		telFlag    = flag.String("telemetry", "", "export each cell's epoch time-series (JSON + Chrome trace) into this directory")
		epochFlag  = flag.Uint64("epoch", 0, "telemetry sampling period in cycles (0 = default)")
		debugFlag  = flag.String("debug-addr", "", "serve net/http/pprof, expvar, and live progress counters on this address while running")
		engineFlag = flag.String("engine", "lockstep", "simulation engine: lockstep (reference) or event (cycle-skipping; identical tables, faster on memory-bound workloads)")
		frontFlag  = flag.String("frontend", "serial", "per-core frontend execution: serial (reference) or parallel (per-core goroutines with a deterministic LLC barrier; identical tables, faster at GOMAXPROCS>1)")
		serveFlag  = flag.String("serve", "", "coordinator mode: serve the sweep's job queue on this address, render tables once all jobs finish")
		workerFlag = flag.String("worker", "", "worker mode: lease and run jobs from the coordinator at this base URL")
		ttlFlag    = flag.Duration("lease-ttl", time.Minute, "coordinator: job lease duration without a heartbeat before re-leasing")
		triesFlag  = flag.Int("max-attempts", 3, "coordinator: lease attempts per job before falling back to local simulation")
	)
	flag.Parse()

	if *serveFlag != "" && *workerFlag != "" {
		fmt.Fprintln(os.Stderr, "experiments: -serve and -worker are mutually exclusive")
		os.Exit(2)
	}

	engine, err := system.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	frontend, err := system.ParseFrontend(*frontFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	if *sanFlag && !san.Compiled {
		fmt.Fprintln(os.Stderr, "experiments: -san requires a binary built with -tags=san")
		os.Exit(2)
	}
	san.SetEnabled(*sanFlag)

	opts := harness.DefaultRunOptions()
	if *fastFlag {
		opts = harness.FastRunOptions()
	}
	opts.Seed = *seedFlag
	opts.Engine = engine
	opts.Frontend = frontend

	var report io.Writer = os.Stderr
	if *quietFlag {
		report = nil
	}
	var debugReg *telemetry.Registry
	if *debugFlag != "" {
		debugReg = telemetry.NewRegistry()
		srv, err := telemetry.StartDebugServer(*debugFlag, debugReg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		// The process is exiting anyway when this runs; a close error on the
		// debug listener has no one left to act on it.
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "experiments: debug server on http://%s/debug/\n", srv.Addr)
	}
	if *workerFlag != "" {
		w := &sweep.Worker{
			BaseURL: *workerFlag,
			Jobs:    *jobsFlag,
			WarmDir: *warmFlag,
			Report:  report,
		}
		if err := w.Run(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := harness.SuiteConfig{
		Experiments:    strings.Split(*expFlag, ","),
		Opts:           opts,
		Jobs:           *jobsFlag,
		Format:         *formatFlag,
		BudgetLabel:    budgetName(*fastFlag),
		Report:         report,
		WarmDir:        *warmFlag,
		TelemetryDir:   *telFlag,
		TelemetryEpoch: *epochFlag,
		Debug:          debugReg,
	}

	if *serveFlag != "" {
		if err := serveSweep(*serveFlag, cfg, sweep.Options{LeaseTTL: *ttlFlag, MaxAttempts: *triesFlag}, report); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			var unknown harness.UnknownExperimentError
			if errors.As(err, &unknown) {
				os.Exit(2)
			}
			os.Exit(1)
		}
		return
	}

	if err := harness.RunSuite(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		var unknown harness.UnknownExperimentError
		if errors.As(err, &unknown) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// serveSweep runs coordinator mode: serve the job queue on addr, wait
// until every job is terminal, render the tables to stdout, then shut
// the listener down.
func serveSweep(addr string, cfg harness.SuiteConfig, o sweep.Options, report io.Writer) error {
	coord, err := sweep.NewCoordinator(cfg, o)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if report != nil {
		fmt.Fprintf(report, "experiments: sweep coordinator on http://%s/ (progress at /v1/progress)\n", ln.Addr())
	}
	runErr := coord.Run(context.Background(), os.Stdout)
	// Lame-duck period: keep answering lease polls (now "410 drained")
	// for a moment so workers between polls exit cleanly instead of
	// hitting a closed port.
	time.Sleep(time.Second)
	closeErr := srv.Close()
	<-serveErr // always http.ErrServerClosed after Close; the real errors are below
	if runErr != nil {
		return runErr
	}
	return closeErr
}

func budgetName(fast bool) string {
	if fast {
		return "fast"
	}
	return "full"
}
