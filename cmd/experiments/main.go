// Command experiments regenerates every table and figure of the Bingo
// paper's evaluation (HPCA 2019) on the simulated system, plus the extra
// ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments -exp all              # everything (slow: the full matrix)
//	experiments -exp fig8             # one artefact
//	experiments -exp fig7,fig8,fig9   # several (they share runs)
//	experiments -fast                 # reduced instruction budgets
//	experiments -exp all -fast -j 8   # warm the run matrix on 8 workers
//	experiments -warm-reuse .warm     # reuse end-of-warm-up checkpoints
//
// Artefact names: table1 table2 fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10
// ablate-vote ablate-region ablate-sharing ablate-queue ablate-bandwidth
// ablate-level ablate-tags extras seeds.
//
// The rendered tables on stdout are byte-identical for every -j value
// (and across repeated runs); timings and the per-cell run report go to
// stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bingo/internal/harness"
	"bingo/internal/san"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment list or 'all'")
		fastFlag   = flag.Bool("fast", false, "use reduced instruction budgets")
		seedFlag   = flag.Int64("seed", 1, "workload generator seed")
		formatFlag = flag.String("format", "text", "output format: text, csv, or markdown")
		jobsFlag   = flag.Int("j", 0, "simulation workers; 1 = sequential, 0 = GOMAXPROCS")
		quietFlag  = flag.Bool("quiet", false, "suppress the stderr run report")
		sanFlag    = flag.Bool("san", san.Compiled, "runtime invariant checking (needs a -tags=san build)")
		warmFlag   = flag.String("warm-reuse", "", "cache end-of-warm-up checkpoints in this directory and restore them on later runs (tables stay byte-identical)")
	)
	flag.Parse()

	if *sanFlag && !san.Compiled {
		fmt.Fprintln(os.Stderr, "experiments: -san requires a binary built with -tags=san")
		os.Exit(2)
	}
	san.SetEnabled(*sanFlag)

	opts := harness.DefaultRunOptions()
	if *fastFlag {
		opts = harness.FastRunOptions()
	}
	opts.Seed = *seedFlag

	var report io.Writer = os.Stderr
	if *quietFlag {
		report = nil
	}
	cfg := harness.SuiteConfig{
		Experiments: strings.Split(*expFlag, ","),
		Opts:        opts,
		Jobs:        *jobsFlag,
		Format:      *formatFlag,
		BudgetLabel: budgetName(*fastFlag),
		Report:      report,
		WarmDir:     *warmFlag,
	}
	if err := harness.RunSuite(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		var unknown harness.UnknownExperimentError
		if errors.As(err, &unknown) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func budgetName(fast bool) string {
	if fast {
		return "fast"
	}
	return "full"
}
