// Command experiments regenerates every table and figure of the Bingo
// paper's evaluation (HPCA 2019) on the simulated system, plus the extra
// ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments -exp all              # everything (slow: the full matrix)
//	experiments -exp fig8             # one artefact
//	experiments -exp fig7,fig8,fig9   # several (they share runs)
//	experiments -fast                 # reduced instruction budgets
//
// Artefact names: table1 table2 fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10
// ablate-vote ablate-region.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bingo/internal/harness"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment list or 'all'")
		fastFlag   = flag.Bool("fast", false, "use reduced instruction budgets")
		seedFlag   = flag.Int64("seed", 1, "workload generator seed")
		formatFlag = flag.String("format", "text", "output format: text, csv, or markdown")
	)
	flag.Parse()

	opts := harness.DefaultRunOptions()
	if *fastFlag {
		opts = harness.FastRunOptions()
	}
	opts.Seed = *seedFlag

	order := []string{"table1", "table2", "fig2", "fig3", "fig4", "fig6",
		"fig7", "fig8", "fig9", "fig10", "ablate-vote", "ablate-region",
		"ablate-sharing", "ablate-queue", "ablate-bandwidth", "ablate-level", "ablate-tags", "extras", "seeds"}
	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range order {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	m := harness.NewMatrix(opts)
	for _, exp := range order {
		if !want[exp] {
			continue
		}
		delete(want, exp)
		t0 := time.Now()
		table, err := runExperiment(exp, m, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", exp, err)
			os.Exit(1)
		}
		table.AddNote("generated in %.0fs (seed %d, %s budgets)",
			time.Since(t0).Seconds(), opts.Seed, budgetName(*fastFlag))
		switch *formatFlag {
		case "csv":
			table.RenderCSV(os.Stdout)
		case "markdown":
			table.RenderMarkdown(os.Stdout)
		default:
			table.Render(os.Stdout)
		}
	}
	for unknown := range want {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (have %v)\n", unknown, order)
		os.Exit(2)
	}
}

func budgetName(fast bool) string {
	if fast {
		return "fast"
	}
	return "full"
}

func runExperiment(name string, m *harness.Matrix, opts harness.RunOptions) (harness.Table, error) {
	switch name {
	case "table1":
		return harness.Table1(opts), nil
	case "table2":
		return harness.Table2(m)
	case "fig2":
		return harness.Fig2(opts)
	case "fig3":
		return harness.Fig3(m)
	case "fig4":
		return harness.Fig4(opts)
	case "fig6":
		return harness.Fig6(m, nil)
	case "fig7":
		return harness.Fig7(m)
	case "fig8":
		return harness.Fig8(m)
	case "fig9":
		return harness.Fig9(m, harness.DefaultAreaModel())
	case "fig10":
		return harness.Fig10(m)
	case "ablate-vote":
		return harness.AblateVote(m)
	case "ablate-region":
		return harness.AblateRegion(m)
	case "ablate-sharing":
		return harness.AblateSharing(m)
	case "ablate-queue":
		return harness.AblateQueue(opts)
	case "ablate-bandwidth":
		return harness.AblateBandwidth(opts)
	case "ablate-level":
		return harness.AblateLevel(opts)
	case "ablate-tags":
		return harness.AblateTags(m)
	case "extras":
		return harness.Extras(m)
	case "seeds":
		return harness.SeedSweep("bingo", opts, nil)
	default:
		return harness.Table{}, fmt.Errorf("unknown experiment %q", name)
	}
}
