package bingo_test

import (
	"bytes"
	"testing"

	"bingo/internal/harness"
	"bingo/internal/system"
	"bingo/internal/trace"
	"bingo/internal/workloads"
)

// TestTraceReplayMatchesLiveGeneration is the cross-module integration
// check: recording a workload's streams to the binary trace format and
// replaying them through the simulator must produce bit-identical results
// to simulating the generator directly.
func TestTraceReplayMatchesLiveGeneration(t *testing.T) {
	opts := harness.FastRunOptions()
	opts.System.LLC.SizeBytes = 512 * 1024
	opts.System.WarmupInstr = 10_000
	opts.System.MeasureInstr = 30_000
	cfg := opts.System

	w, _ := workloads.ByName("em3d")
	const records = 40_000

	// Record each core's stream.
	perCore := make([][]trace.Record, cfg.NumCores)
	for i, src := range w.Sources(cfg.NumCores, 1) {
		perCore[i] = trace.Collect(src, records)
	}

	// Round-trip through the binary format.
	replayed := make([]trace.Source, cfg.NumCores)
	for i, recs := range perCore {
		var buf bytes.Buffer
		tw, err := trace.NewWriter(&buf, uint64(len(recs)))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := tw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		tr, err := trace.NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		replayed[i] = tr
	}

	factory, err := harness.FactoryByName("bingo")
	if err != nil {
		t.Fatal(err)
	}

	direct := make([]trace.Source, cfg.NumCores)
	for i, recs := range perCore {
		direct[i] = trace.NewSliceSource(recs)
	}

	resDirect := system.MustNew(cfg, direct, factory).Run()
	resReplay := system.MustNew(cfg, replayed, factory).Run()

	if resDirect.TotalCycles != resReplay.TotalCycles {
		t.Fatalf("cycles diverged: %d vs %d", resDirect.TotalCycles, resReplay.TotalCycles)
	}
	if resDirect.LLC != resReplay.LLC {
		t.Fatalf("LLC stats diverged:\n direct %+v\n replay %+v", resDirect.LLC, resReplay.LLC)
	}
	if resDirect.DRAM != resReplay.DRAM {
		t.Fatal("DRAM stats diverged")
	}
	for i := range resDirect.PerCore {
		if resDirect.PerCore[i] != resReplay.PerCore[i] {
			t.Fatalf("core %d diverged", i)
		}
	}
}

// TestPrefetcherRankingIntegration checks the headline result end to end
// at reduced scale: on the spatially-friendly workloads, Bingo must beat
// the no-prefetcher baseline and at least match SMS.
func TestPrefetcherRankingIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run integration; skipped in -short")
	}
	opts := harness.DefaultRunOptions()
	opts.System.WarmupInstr = 300_000
	opts.System.MeasureInstr = 300_000

	w, _ := workloads.ByName("em3d")
	base, err := harness.Run(w, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	bingoRes, err := harness.RunNamed(w, "bingo", opts)
	if err != nil {
		t.Fatal(err)
	}
	smsRes, err := harness.RunNamed(w, "sms", opts)
	if err != nil {
		t.Fatal(err)
	}

	if bingoRes.Throughput() <= base.Throughput() {
		t.Fatalf("bingo (%.2f) should beat the baseline (%.2f) on em3d",
			bingoRes.Throughput(), base.Throughput())
	}
	if bingoRes.Throughput() < smsRes.Throughput() {
		t.Fatalf("bingo (%.2f) should not lose to SMS (%.2f) on em3d",
			bingoRes.Throughput(), smsRes.Throughput())
	}
	if bingoRes.CoverageVsBaseline(base.LLC.Misses) < 0.5 {
		t.Fatalf("bingo coverage on em3d = %.2f, want > 0.5",
			bingoRes.CoverageVsBaseline(base.LLC.Misses))
	}
}
