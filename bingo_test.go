package bingo_test

import (
	"testing"

	"bingo"
)

// facadeOptions shrinks the machine and budgets for fast façade tests.
func facadeOptions() bingo.RunOptions {
	opts := bingo.DefaultRunOptions()
	opts.System.LLC.SizeBytes = 512 * 1024
	opts.System.WarmupInstr = 20_000
	opts.System.MeasureInstr = 50_000
	return opts
}

func TestWorkloadsExposed(t *testing.T) {
	if len(bingo.Workloads()) != 10 {
		t.Fatal("ten workloads expected")
	}
	if _, ok := bingo.WorkloadByName("em3d"); !ok {
		t.Fatal("em3d should resolve")
	}
	if _, ok := bingo.WorkloadByName("nope"); ok {
		t.Fatal("unknown workload should not resolve")
	}
}

func TestPrefetchersExposed(t *testing.T) {
	names := bingo.Prefetchers()
	want := map[string]bool{"bingo": true, "sms": true, "none": true, "bop": true}
	found := 0
	for _, n := range names {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("registry missing entries: %v", names)
	}
}

func TestRunWorkloadEndToEnd(t *testing.T) {
	w, _ := bingo.WorkloadByName("Streaming")
	opts := facadeOptions()
	base, err := bingo.RunWorkload(w, "none", opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bingo.RunWorkload(w, "bingo", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput() <= base.Throughput() {
		t.Fatalf("bingo should speed Streaming up: %.2f vs %.2f",
			res.Throughput(), base.Throughput())
	}
	if res.LLC.UsefulPrefetch == 0 {
		t.Fatal("bingo should issue useful prefetches on Streaming")
	}
	// At this tiny scale the history is cold; allow slight miss noise but
	// not wholesale pollution.
	if float64(res.LLC.Misses) > 1.1*float64(base.LLC.Misses) {
		t.Fatalf("bingo polluted the LLC: %d vs %d misses", res.LLC.Misses, base.LLC.Misses)
	}
}

func TestStandalonePrefetcher(t *testing.T) {
	pf := bingo.NewPrefetcher(bingo.DefaultPrefetcherConfig())
	// Train one region residency by hand via the public types.
	region := uint64(42)
	blockAt := func(b int) bingo.Addr { return bingo.Addr(region*2048 + uint64(b)*64) }
	pf.OnAccess(bingo.AccessEvent{PC: 0x400, Addr: blockAt(1)})
	pf.OnAccess(bingo.AccessEvent{PC: 0x404, Addr: blockAt(4)})
	pf.OnEviction(blockAt(1))

	// Generalise to a new region via PC+Offset.
	got := pf.OnAccess(bingo.AccessEvent{PC: 0x400, Addr: bingo.Addr(900*2048 + 1*64)})
	if len(got) != 1 || got[0] != bingo.Addr(900*2048+4*64) {
		t.Fatalf("prefetch = %v", got)
	}
	if pf.StorageBytes() < 100_000 {
		t.Fatalf("default storage = %d, want ≈119 KB", pf.StorageBytes())
	}
}

func TestCustomPrefetcherViaFactory(t *testing.T) {
	w, _ := bingo.WorkloadByName("Streaming")
	var built int
	factory := bingo.PrefetcherFactory(func(core int) bingo.Prefetcher {
		built++
		return nopPrefetcher{}
	})
	if _, err := bingo.RunWorkloadWith(w, factory, facadeOptions()); err != nil {
		t.Fatal(err)
	}
	if built != 4 {
		t.Fatalf("factory built %d instances, want one per core", built)
	}
}

type nopPrefetcher struct{}

func (nopPrefetcher) Name() string                            { return "nop" }
func (nopPrefetcher) OnAccess(bingo.AccessEvent) []bingo.Addr { return nil }
func (nopPrefetcher) OnEviction(bingo.Addr)                   {}
func (nopPrefetcher) StorageBytes() int                       { return 0 }

func TestFastRunOptionsSmaller(t *testing.T) {
	fast := bingo.FastRunOptions()
	full := bingo.DefaultRunOptions()
	if fast.System.MeasureInstr >= full.System.MeasureInstr {
		t.Fatal("fast options should shrink the budget")
	}
}
